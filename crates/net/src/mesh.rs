//! Shared socket-mesh machinery: the handshake/framing envelope, the
//! incremental (partial-read / partial-write) frame codecs, and the
//! round engine both real-socket transports drive.
//!
//! [`crate::tcp::TcpTransport`] (thread-per-peer, blocking I/O) and
//! [`crate::reactor::ReactorTransport`] (one nonblocking event loop)
//! differ only in *how bytes move*; everything that decides *which*
//! frames exist — metering, fault injection, parking, barriers — lives
//! here, once. That is the transport-parity argument: the two cannot
//! disagree on a [`crate::Metrics`] byte because they execute the same
//! routing code against the same [`DeliveryPolicy`] RNG streams.

use crate::error::{Error, TcpError};
use crate::frame::{decode_frame, encode_frame};
use crate::policy::DeliveryPolicy;
use crate::{Delivered, Metrics, Outgoing, PlayerId, Recipient, SimError};
use borndist_pairing::codec::{CodecError, Wire};
use rand::rngs::StdRng;
use rand::RngCore;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{Read, Write};

/// Hard cap on a length-prefixed envelope — the pre-allocation guard
/// against adversarial length prefixes (mirrors the `Vec<T>` decoder's
/// `BadLength` check one layer down).
pub const MAX_ENVELOPE_BYTES: usize = 64 * 1024 * 1024;

/// What actually crosses a socket: a length-prefixed, strictly decoded
/// control-or-payload record. Protocol frames travel opaque inside
/// [`Envelope::Payload`] — the transport never interprets them, each
/// recipient decodes independently (decode-validate-then-process).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Envelope {
    /// Dialer's first word: who is calling, and whom it thinks it
    /// reached.
    Hello {
        /// The dialing player.
        from: PlayerId,
        /// The id the dialer expects on this end.
        to: PlayerId,
    },
    /// Acceptor's reply, confirming its identity.
    HelloAck {
        /// The accepting player.
        from: PlayerId,
    },
    /// One protocol frame sent in `round`.
    Payload {
        /// The sender's round number.
        round: u32,
        /// `true` for the broadcast channel, `false` for private.
        broadcast: bool,
        /// The versioned protocol frame ([`crate::frame`]).
        frame: Vec<u8>,
    },
    /// The sender has emitted everything it will send in `round`.
    EndRound {
        /// The closed round.
        round: u32,
    },
    /// The sender terminated in `round`; satisfies every later barrier.
    Finished {
        /// The terminal round.
        round: u32,
    },
}

const TAG_HELLO: u8 = 0;
const TAG_HELLO_ACK: u8 = 1;
const TAG_PAYLOAD: u8 = 2;
const TAG_END_ROUND: u8 = 3;
const TAG_FINISHED: u8 = 4;

impl Wire for Envelope {
    fn encode_to(&self, out: &mut Vec<u8>) {
        match self {
            Envelope::Hello { from, to } => {
                out.push(TAG_HELLO);
                from.encode_to(out);
                to.encode_to(out);
            }
            Envelope::HelloAck { from } => {
                out.push(TAG_HELLO_ACK);
                from.encode_to(out);
            }
            Envelope::Payload {
                round,
                broadcast,
                frame,
            } => {
                out.push(TAG_PAYLOAD);
                round.encode_to(out);
                out.push(u8::from(*broadcast));
                frame.encode_to(out);
            }
            Envelope::EndRound { round } => {
                out.push(TAG_END_ROUND);
                round.encode_to(out);
            }
            Envelope::Finished { round } => {
                out.push(TAG_FINISHED);
                round.encode_to(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        match u8::decode(input)? {
            TAG_HELLO => Ok(Envelope::Hello {
                from: u32::decode(input)?,
                to: u32::decode(input)?,
            }),
            TAG_HELLO_ACK => Ok(Envelope::HelloAck {
                from: u32::decode(input)?,
            }),
            TAG_PAYLOAD => Ok(Envelope::Payload {
                round: u32::decode(input)?,
                broadcast: match u8::decode(input)? {
                    0 => false,
                    1 => true,
                    t => return Err(CodecError::InvalidTag(t)),
                },
                frame: Vec::<u8>::decode(input)?,
            }),
            TAG_END_ROUND => Ok(Envelope::EndRound {
                round: u32::decode(input)?,
            }),
            TAG_FINISHED => Ok(Envelope::Finished {
                round: u32::decode(input)?,
            }),
            tag => Err(CodecError::InvalidTag(tag)),
        }
    }
}

/// Encodes one envelope with its `u32` big-endian length prefix — the
/// exact bytes either transport puts on the wire.
pub fn frame_envelope(env: &Envelope) -> Vec<u8> {
    let body = env.encode();
    let mut buf = Vec::with_capacity(4 + body.len());
    buf.extend_from_slice(&(body.len() as u32).to_be_bytes());
    buf.extend_from_slice(&body);
    buf
}

/// Writes one length-prefixed envelope (blocking path).
pub(crate) fn write_envelope<W: Write>(stream: &mut W, env: &Envelope) -> std::io::Result<()> {
    stream.write_all(&frame_envelope(env))
}

/// Reads one length-prefixed envelope (blocking path), enforcing
/// [`MAX_ENVELOPE_BYTES`].
pub(crate) fn read_envelope<R: Read>(stream: &mut R) -> Result<Envelope, Error> {
    let mut len_bytes = [0u8; 4];
    stream.read_exact(&mut len_bytes)?;
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > MAX_ENVELOPE_BYTES {
        return Err(TcpError::OversizedEnvelope {
            declared: len,
            max: MAX_ENVELOPE_BYTES,
        }
        .into());
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Ok(Envelope::decode_exact(&body)?)
}

/// What one nonblocking pull from a socket produced.
#[derive(Debug, Default)]
pub struct Pull {
    /// Every envelope completed by this pull, in arrival order.
    pub envelopes: Vec<Envelope>,
    /// `true` once the peer is unusable: EOF, a socket error, an
    /// oversized length prefix, or a malformed envelope. Mirrors the
    /// blocking reader's "any read error means the peer is gone".
    pub closed: bool,
}

/// The partial-read state machine of one inbound socket: accumulates
/// whatever bytes a nonblocking read produces and yields envelopes as
/// their length prefixes complete — the incremental replacement for the
/// blocking `read_exact` pair.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    resumptions: u64,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        Self::default()
    }

    /// How many times a pull found bytes while the buffer already held
    /// a partial frame — the "partial-read resumption" counter surfaced
    /// in [`crate::TransportStats`].
    pub fn resumptions(&self) -> u64 {
        self.resumptions
    }

    /// Appends raw bytes and extracts every completed envelope.
    ///
    /// # Errors
    ///
    /// An oversized declared length or a strict-decode failure poisons
    /// the stream (framing is unrecoverable once misaligned).
    pub fn feed(&mut self, bytes: &[u8]) -> Result<Vec<Envelope>, Error> {
        if !self.buf.is_empty() && !bytes.is_empty() {
            self.resumptions += 1;
        }
        self.buf.extend_from_slice(bytes);
        let mut out = Vec::new();
        loop {
            if self.buf.len() < 4 {
                return Ok(out);
            }
            let len =
                u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
            if len > MAX_ENVELOPE_BYTES {
                return Err(TcpError::OversizedEnvelope {
                    declared: len,
                    max: MAX_ENVELOPE_BYTES,
                }
                .into());
            }
            if self.buf.len() < 4 + len {
                return Ok(out);
            }
            let env = Envelope::decode_exact(&self.buf[4..4 + len])?;
            self.buf.drain(..4 + len);
            out.push(env);
        }
    }

    /// Drains a nonblocking reader: reads until `WouldBlock`, EOF or an
    /// error, feeding every chunk through [`Self::feed`].
    pub fn pull<R: Read>(&mut self, r: &mut R) -> Pull {
        let mut pull = Pull::default();
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match r.read(&mut chunk) {
                Ok(0) => {
                    pull.closed = true;
                    return pull;
                }
                Ok(n) => match self.feed(&chunk[..n]) {
                    Ok(envs) => pull.envelopes.extend(envs),
                    Err(_) => {
                        pull.closed = true;
                        return pull;
                    }
                },
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return pull,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    pull.closed = true;
                    return pull;
                }
            }
        }
    }
}

/// Result of a [`WriteQueue::flush`] attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Flush {
    /// Everything queued is on the wire.
    Drained,
    /// The socket's send buffer filled; bytes remain queued.
    Blocked,
    /// The socket is dead; queued bytes are lost.
    Closed,
}

/// The partial-write state machine of one outbound socket: envelopes
/// are queued whole and flushed as far as the socket accepts, with the
/// offset into the front buffer carried across `WouldBlock` — the
/// replacement for blocking `write_all` calls that can deadlock a large
/// simultaneous fan-out.
#[derive(Debug, Default)]
pub struct WriteQueue {
    queue: VecDeque<Vec<u8>>,
    /// Bytes of `queue[0]` already written.
    offset: usize,
}

impl WriteQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues one envelope (length prefix included).
    pub fn push(&mut self, env: &Envelope) {
        self.queue.push_back(frame_envelope(env));
    }

    /// `true` when nothing is waiting to be written.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Writes as much as the (nonblocking) socket accepts.
    pub fn flush<W: Write>(&mut self, w: &mut W) -> Flush {
        while let Some(front) = self.queue.front() {
            match w.write(&front[self.offset..]) {
                Ok(0) => return Flush::Closed,
                Ok(n) => {
                    self.offset += n;
                    if self.offset == front.len() {
                        self.queue.pop_front();
                        self.offset = 0;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Flush::Blocked,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return Flush::Closed,
            }
        }
        Flush::Drained
    }
}

/// A parked inbound frame, keyed by the round it belongs to.
pub(crate) struct Parked {
    pub from: PlayerId,
    pub broadcast: bool,
    pub frame: Vec<u8>,
}

/// The per-player round-engine state shared by both socket transports:
/// frames parked for future barriers, the per-peer `EndRound`
/// watermark, and the finished/gone verdicts.
pub(crate) struct RoundState {
    /// Frames parked for a future round's barrier.
    pub pending: BTreeMap<u32, Vec<Parked>>,
    /// Highest round each peer has closed with `EndRound` (every mesh
    /// peer has an entry — the key set doubles as the peer list).
    pub closed: BTreeMap<PlayerId, Option<u32>>,
    /// Peers that sent `Finished` (satisfies every later barrier).
    pub finished: BTreeSet<PlayerId>,
    /// Peers whose socket died or that timed out a barrier.
    pub gone: BTreeSet<PlayerId>,
}

impl RoundState {
    pub fn new<I: IntoIterator<Item = PlayerId>>(peers: I) -> Self {
        RoundState {
            pending: BTreeMap::new(),
            closed: peers.into_iter().map(|p| (p, None)).collect(),
            finished: BTreeSet::new(),
            gone: BTreeSet::new(),
        }
    }

    /// `true` if `peer` is still a delivery target (not finished, not
    /// crashed).
    pub fn live(&self, peer: PlayerId) -> bool {
        !self.finished.contains(&peer) && !self.gone.contains(&peer)
    }

    /// The live peers, in id order.
    pub fn live_peers(&self) -> Vec<PlayerId> {
        self.closed
            .keys()
            .filter(|p| self.live(**p))
            .copied()
            .collect()
    }

    /// Assembles round `round`'s inbox: everything parked at the
    /// barrier, sorted into the canonical pre-shuffle order (ascending
    /// sender id — matching the in-process transports' registration
    /// order), then shuffled receiver-side from the shared per-(receiver,
    /// deliver-round) stream — draw-for-draw identical to the router's
    /// per-inbox Fisher–Yates.
    pub fn take_inbox<M: Wire>(
        &mut self,
        round: usize,
        me: PlayerId,
        policy: &DeliveryPolicy,
    ) -> Vec<Delivered<M>> {
        let mut parked = self.pending.remove(&(round as u32)).unwrap_or_default();
        parked.sort_by_key(|p| p.from);
        if policy.reorder {
            let mut rng = policy.reorder_rng(round, me);
            for i in (1..parked.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                parked.swap(i, j);
            }
        }
        parked
            .into_iter()
            .map(|p| Delivered {
                from: p.from,
                broadcast: p.broadcast,
                msg: decode_frame(&p.frame),
            })
            .collect()
    }

    /// Absorbs one post-handshake envelope from `from` while this
    /// player sits at round `r32`. A round-`pr` payload belongs to the
    /// round-`pr + 1` inbox (sent in `pr`, delivered at the next
    /// barrier); frames for rounds already closed here — a straggler
    /// after a timeout verdict — are dropped.
    pub fn note_envelope(&mut self, from: PlayerId, env: Envelope, r32: u32) {
        match env {
            Envelope::Payload {
                round: pr,
                broadcast,
                frame,
            } => {
                if pr >= r32 {
                    self.pending.entry(pr + 1).or_default().push(Parked {
                        from,
                        broadcast,
                        frame,
                    });
                }
            }
            Envelope::EndRound { round: pr } => {
                let entry = self.closed.entry(from).or_insert(None);
                *entry = Some(entry.map_or(pr, |c| c.max(pr)));
            }
            Envelope::Finished { .. } => {
                self.finished.insert(from);
            }
            // Handshake words after the mesh is up are a protocol
            // violation; ignore them.
            Envelope::Hello { .. } | Envelope::HelloAck { .. } => {}
        }
    }

    /// The live peers whose round-`r32` barrier is still open.
    pub fn waiting_on(&self, r32: u32) -> Vec<PlayerId> {
        self.closed
            .iter()
            .filter(|(p, c)| self.live(**p) && !matches!(c, Some(done) if *done >= r32))
            .map(|(p, _)| *p)
            .collect()
    }
}

/// Routes one round's outgoing messages: metering (sender-side, real
/// encoded lengths, **before** tampering), fault injection in emission
/// order from the shared sender RNG, local parking of self-deliveries,
/// and fan-out through `send` — `send(peer, env)` returns `false` when
/// the peer's socket is dead, which marks it gone exactly like the
/// blocking transport's failed `write_all`.
///
/// This is *the* function both socket transports call, so the drop /
/// duplicate / tamper schedule and every metered byte are identical by
/// construction.
#[allow(clippy::too_many_arguments)] // the full per-round routing context
pub(crate) fn route_outgoing<M: Wire>(
    me: PlayerId,
    round: usize,
    outgoing: Vec<Outgoing<M>>,
    policy: &DeliveryPolicy,
    send_rng: &mut StdRng,
    state: &mut RoundState,
    metrics: &mut Metrics,
    send: &mut dyn FnMut(PlayerId, &Envelope) -> bool,
) -> Result<(), Error> {
    let r32 = round as u32;
    let mut round_msgs = 0usize;
    let mut round_bytes = 0usize;
    for out in outgoing {
        let mut frame = encode_frame(&out.msg);
        // Meter sender-side at the real encoded length, before fault
        // injection — identical to the shared router.
        round_msgs += 1;
        round_bytes += frame.len();
        *metrics.bytes_by_player.entry(me).or_insert(0) += frame.len();
        policy.tamper_frame(round, me, &mut frame);

        match out.to {
            Recipient::Broadcast => {
                state.pending.entry(r32 + 1).or_default().push(Parked {
                    from: me,
                    broadcast: true,
                    frame: frame.clone(),
                });
                let env = Envelope::Payload {
                    round: r32,
                    broadcast: true,
                    frame,
                };
                for pid in state.live_peers() {
                    if !send(pid, &env) {
                        state.gone.insert(pid);
                    }
                }
            }
            Recipient::Private(to) => {
                if to != me && !state.closed.contains_key(&to) {
                    return Err(SimError::UnknownRecipient(to).into());
                }
                if !policy.link_up(round, me, to) {
                    continue;
                }
                let dropped = DeliveryPolicy::chance(send_rng, policy.drop_rate);
                let duplicated =
                    !dropped && DeliveryPolicy::chance(send_rng, policy.duplicate_rate);
                if dropped {
                    continue;
                }
                let copies = if duplicated { 2 } else { 1 };
                for _ in 0..copies {
                    if to == me {
                        state.pending.entry(r32 + 1).or_default().push(Parked {
                            from: me,
                            broadcast: false,
                            frame: frame.clone(),
                        });
                    } else if state.live(to) {
                        let env = Envelope::Payload {
                            round: r32,
                            broadcast: false,
                            frame: frame.clone(),
                        };
                        if !send(to, &env) {
                            state.gone.insert(to);
                        }
                    }
                    // A private frame to a finished peer is metered but
                    // silently dropped — its recipient legitimately
                    // left.
                }
            }
        }
    }
    metrics.messages += round_msgs;
    metrics.bytes += round_bytes;
    metrics.per_round.push((round_msgs, round_bytes));
    if round_msgs > 0 {
        metrics.active_rounds += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_reader_reassembles_byte_by_byte() {
        let envs = [
            Envelope::Hello { from: 3, to: 1 },
            Envelope::Payload {
                round: 2,
                broadcast: true,
                frame: vec![9; 100],
            },
            Envelope::EndRound { round: 2 },
        ];
        let mut wire = Vec::new();
        for env in &envs {
            wire.extend_from_slice(&frame_envelope(env));
        }
        let mut reader = FrameReader::new();
        let mut seen = Vec::new();
        for b in &wire {
            seen.extend(reader.feed(std::slice::from_ref(b)).unwrap());
        }
        assert_eq!(seen, envs);
        // Every frame needed many partial-read resumptions.
        assert!(reader.resumptions() > envs.len() as u64);
    }

    #[test]
    fn frame_reader_handles_coalesced_and_split_chunks() {
        let a = frame_envelope(&Envelope::EndRound { round: 7 });
        let b = frame_envelope(&Envelope::Finished { round: 8 });
        let mut wire = a.clone();
        wire.extend_from_slice(&b);
        // Two frames in one chunk.
        let mut reader = FrameReader::new();
        assert_eq!(reader.feed(&wire).unwrap().len(), 2);
        assert_eq!(reader.resumptions(), 0);
        // One frame split across the two-chunk boundary.
        let mut reader = FrameReader::new();
        let split = a.len() + 2;
        assert_eq!(reader.feed(&wire[..split]).unwrap().len(), 1);
        assert_eq!(reader.feed(&wire[split..]).unwrap().len(), 1);
        assert_eq!(reader.resumptions(), 1);
    }

    #[test]
    fn frame_reader_rejects_oversized_and_malformed() {
        let mut reader = FrameReader::new();
        let oversize = (MAX_ENVELOPE_BYTES as u32 + 1).to_be_bytes();
        assert!(matches!(
            reader.feed(&oversize),
            Err(Error::Tcp(TcpError::OversizedEnvelope { .. }))
        ));
        let mut reader = FrameReader::new();
        // Declared length 1, body = invalid tag 9.
        assert!(reader.feed(&[0, 0, 0, 1, 9]).is_err());
    }

    #[test]
    fn write_queue_tracks_partial_writes() {
        /// Accepts at most `cap` bytes per call, then `WouldBlock`s.
        struct Throttle {
            cap: usize,
            sunk: Vec<u8>,
            calls: usize,
        }
        impl Write for Throttle {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.calls += 1;
                if self.calls.is_multiple_of(2) {
                    return Err(std::io::ErrorKind::WouldBlock.into());
                }
                let n = buf.len().min(self.cap);
                self.sunk.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let env = Envelope::Payload {
            round: 1,
            broadcast: false,
            frame: vec![7; 50],
        };
        let mut wq = WriteQueue::new();
        wq.push(&env);
        wq.push(&Envelope::EndRound { round: 1 });
        let mut sink = Throttle {
            cap: 3,
            sunk: Vec::new(),
            calls: 0,
        };
        let mut flushes = 0;
        while wq.flush(&mut sink) == Flush::Blocked {
            flushes += 1;
            assert!(flushes < 1000, "flush must converge");
        }
        assert!(wq.is_empty());
        // The bytes on the "wire" are the two frames, uncorrupted by
        // all the partial writes.
        let mut expect = frame_envelope(&env);
        expect.extend_from_slice(&frame_envelope(&Envelope::EndRound { round: 1 }));
        assert_eq!(sink.sunk, expect);
    }

    #[test]
    fn round_state_parks_closes_and_times_out() {
        let mut state = RoundState::new([2, 3]);
        assert_eq!(state.waiting_on(0), vec![2, 3]);
        state.note_envelope(
            2,
            Envelope::Payload {
                round: 0,
                broadcast: true,
                frame: vec![1],
            },
            0,
        );
        state.note_envelope(2, Envelope::EndRound { round: 0 }, 0);
        assert_eq!(state.waiting_on(0), vec![3]);
        state.note_envelope(3, Envelope::Finished { round: 0 }, 0);
        assert!(state.waiting_on(0).is_empty());
        // Finished satisfies *future* barriers too.
        assert_eq!(state.waiting_on(5), vec![2]);
        // A straggler for a round closed long ago is dropped — only the
        // frame parked at the top of the test sits in round 1's inbox.
        state.note_envelope(
            2,
            Envelope::Payload {
                round: 0,
                broadcast: false,
                frame: vec![2],
            },
            3,
        );
        assert_eq!(state.pending.get(&1).map_or(0, Vec::len), 1);
        let inbox: Vec<Delivered<u64>> = state.take_inbox(1, 9, &DeliveryPolicy::reliable());
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].from, 2);
        assert!(inbox[0].broadcast);
    }
}
