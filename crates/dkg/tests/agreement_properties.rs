//! Randomized-adversary agreement tests: under arbitrary combinations of
//! the supported Byzantine behaviors (bounded by t corruptions), all
//! honest players must (a) finish, (b) agree on the qualified set and
//! public key, and (c) hold shares consistent with the public
//! commitments.

use borndist_dkg::{dkg_session, standard_config, Behavior, DkgOutput};
use borndist_net::TransportKind;
use borndist_pairing::Fr;
use borndist_shamir::{interpolate_at, PedersenShare, ThresholdParams};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Strategy for one Byzantine behavior targeting players in `1..=n`.
fn behavior_strategy(n: u32) -> impl Strategy<Value = Behavior> {
    (
        proptest::collection::btree_set(1..=n, 0..2),
        proptest::collection::btree_set(1..=n, 0..2),
        proptest::collection::vec(1..=n, 0..2),
        any::<bool>(),
        proptest::option::of(0usize..3),
    )
        .prop_map(
            |(corrupt, withhold, false_complaints, refuse, crash)| Behavior {
                corrupt_shares_to: corrupt,
                withhold_shares_from: withhold,
                false_complaints,
                refuse_answers: refuse,
                crash_at_round: crash,
                ..Default::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn agreement_under_random_bounded_adversaries(
        seed in any::<u64>(),
        bad1 in behavior_strategy(7),
        bad2 in behavior_strategy(7),
        slot1 in 1u32..=7,
        slot2 in 1u32..=7,
    ) {
        let t = 2usize;
        let n = 7usize;
        let cfg = standard_config(ThresholdParams::new(t, n).unwrap(), 2, b"prop-dkg", false);
        let mut behaviors = BTreeMap::new();
        behaviors.insert(slot1, bad1);
        if slot2 != slot1 {
            behaviors.insert(slot2, bad2);
        }

        let (outputs, _) = dkg_session(&cfg, &behaviors, seed, &TransportKind::Lockstep).expect("simulation completes");

        // Honest players (those without hooks) must all succeed and agree.
        let honest: Vec<&DkgOutput> = outputs
            .iter()
            .filter(|(id, _)| behaviors.get(id).is_none_or(Behavior::is_honest))
            .map(|(_, o)| o.as_ref().expect("honest players finish"))
            .collect();
        prop_assert!(honest.len() >= n - 2);

        let reference = honest[0];
        for o in &honest {
            prop_assert_eq!(&o.qualified, &reference.qualified);
            prop_assert_eq!(o.public_key_coordinates(), reference.public_key_coordinates());
            prop_assert_eq!(&o.combined_commitments, &reference.combined_commitments);
        }

        // Enough dealers survive: at least the honest ones.
        prop_assert!(reference.qualified.len() >= n - 2);
        prop_assert!(reference.qualified.len() > t);

        // Every honest player's share opens the combined commitments.
        for o in &honest {
            for (k, (a, b)) in o.share.iter().enumerate() {
                let s = PedersenShare { index: o.id, a: *a, b: *b };
                prop_assert!(o.combined_commitments[k].verify_share(&cfg.bases, &s));
            }
        }

        // The honest players' shares interpolate consistently: any two
        // (t+1)-subsets of honest shares give the same secret.
        if honest.len() >= t + 2 {
            let pts: Vec<(u32, Fr)> = honest.iter().map(|o| (o.id, o.share[0].0)).collect();
            let s1 = interpolate_at(&pts[..t + 1], Fr::zero()).unwrap();
            let s2 = interpolate_at(&pts[1..t + 2], Fr::zero()).unwrap();
            prop_assert_eq!(s1, s2);
        }
    }
}
