//! The DKG over real transports: byte-identical metering across
//! runtimes, malformed frames handled as first-class misbehavior, and
//! completion under lossy/partitioned networks (the complaint machinery
//! doubling as loss recovery).

use borndist_dkg::{dkg_session, standard_config, Behavior, DkgOutput};
use borndist_net::{
    DeliveryPolicy, Outage, Partition, Tamper, TamperRule, TransportKind, WireSize,
};
use borndist_shamir::ThresholdParams;
use std::collections::BTreeMap;

fn agreed_output(outputs: &BTreeMap<u32, Result<DkgOutput, borndist_dkg::DkgAbort>>) -> &DkgOutput {
    let oks: Vec<&DkgOutput> = outputs.values().filter_map(|o| o.as_ref().ok()).collect();
    assert!(!oks.is_empty(), "some player must finish");
    for o in &oks {
        assert_eq!(o.qualified, oks[0].qualified, "qualified-set agreement");
        assert_eq!(
            o.combined_commitments, oks[0].combined_commitments,
            "commitment agreement"
        );
    }
    oks[0]
}

#[test]
fn channel_transport_matches_lockstep_byte_for_byte() {
    let params = ThresholdParams::new(1, 4).unwrap();
    let cfg = standard_config(params, 2, b"parity", false);
    let behaviors = BTreeMap::new();
    let (out_lock, m_lock) = dkg_session(&cfg, &behaviors, 42, &TransportKind::Lockstep).unwrap();
    let (out_chan, m_chan) = dkg_session(
        &cfg,
        &behaviors,
        42,
        &TransportKind::Channel(DeliveryPolicy::reliable()),
    )
    .unwrap();
    // Identical traffic: every message is the same frame in both
    // runtimes, metered by the same router.
    assert!(m_lock.same_traffic(&m_chan), "byte metrics must not drift");
    assert!(m_lock.bytes > 0);
    // Identical protocol results.
    let ref_lock = agreed_output(&out_lock);
    let ref_chan = agreed_output(&out_chan);
    assert_eq!(ref_lock.qualified, ref_chan.qualified);
    assert_eq!(ref_lock.combined_commitments, ref_chan.combined_commitments);
    assert_eq!(ref_lock.share, ref_chan.share);
}

#[test]
fn byzantine_run_parity_across_transports() {
    let params = ThresholdParams::new(2, 7).unwrap();
    let cfg = standard_config(params, 2, b"parity-byz", false);
    let mut behaviors = BTreeMap::new();
    behaviors.insert(
        2u32,
        Behavior {
            corrupt_shares_to: [5u32].into_iter().collect(),
            refuse_answers: true,
            ..Default::default()
        },
    );
    behaviors.insert(
        3u32,
        Behavior {
            crash_at_round: Some(0),
            ..Default::default()
        },
    );
    let (out_lock, m_lock) = dkg_session(&cfg, &behaviors, 7, &TransportKind::Lockstep).unwrap();
    let (out_chan, m_chan) = dkg_session(
        &cfg,
        &behaviors,
        7,
        &TransportKind::Channel(DeliveryPolicy::reliable()),
    )
    .unwrap();
    assert!(m_lock.same_traffic(&m_chan));
    let q = &agreed_output(&out_lock).qualified;
    assert_eq!(q, &agreed_output(&out_chan).qualified);
    assert!(!q.contains(&2) && !q.contains(&3));
}

#[test]
fn tampered_dealer_frames_become_disqualification_not_panic() {
    // Dealer 2's round-0 frames (commitment broadcast AND share sends)
    // are corrupted in flight. Every honest receiver sees the broadcast
    // fail the strict decode -> dealer 2 is globally disqualified, the
    // run completes, and all honest players agree.
    let params = ThresholdParams::new(1, 4).unwrap();
    let cfg = standard_config(params, 2, b"tamper", false);
    for kind in [
        Tamper::TruncateTail,
        Tamper::AppendByte,
        Tamper::FlipPayloadBit,
        Tamper::BadVersion,
    ] {
        let policy = DeliveryPolicy {
            tamper: vec![TamperRule {
                round: 0,
                from: 2,
                kind,
            }],
            ..DeliveryPolicy::default()
        };
        let (outputs, _) =
            dkg_session(&cfg, &BTreeMap::new(), 11, &TransportKind::Channel(policy)).unwrap();
        let reference = agreed_output(&outputs);
        assert!(
            !reference.qualified.contains(&2),
            "{:?}: a dealer whose broadcast does not decode must be out",
            kind
        );
        // The other three dealers survive and n - 1 > t+1 sharings
        // remain, so the key material is intact.
        assert_eq!(reference.qualified.len(), 3);
    }
}

#[test]
fn dkg_completes_under_drop_and_reorder() {
    // 15% private-frame loss plus reordering: dropped share deliveries
    // surface as complaints, answered over the reliable broadcast
    // channel — the paper's robustness story doubling as loss recovery.
    // A dealer only falls if loss concentrates more than t complaints on
    // it, which is the §3.1 disqualification rule working as specified.
    let params = ThresholdParams::new(2, 7).unwrap();
    let cfg = standard_config(params, 2, b"lossy", false);

    // Policy seed 1: drops spread out (≤ t complaints per dealer), so
    // every dealer answers its way back in and nobody is disqualified.
    let (outputs, metrics) = dkg_session(
        &cfg,
        &BTreeMap::new(),
        13,
        &TransportKind::Channel(DeliveryPolicy::lossy(1, 0.15)),
    )
    .unwrap();
    let reference = agreed_output(&outputs);
    assert_eq!(
        reference.qualified.len(),
        7,
        "answered complaints must not disqualify"
    );
    assert!(outputs.values().all(|o| o.is_ok()));
    assert!(metrics.bytes > 0);

    // Policy seed 4: loss happens to concentrate > t complaints on one
    // dealer — the protocol correctly drops that dealing, every player
    // still finishes, and all agree on the reduced set.
    let (outputs, _) = dkg_session(
        &cfg,
        &BTreeMap::new(),
        13,
        &TransportKind::Channel(DeliveryPolicy::lossy(4, 0.15)),
    )
    .unwrap();
    let reference = agreed_output(&outputs);
    assert_eq!(reference.qualified.len(), 6);
    assert!(outputs.values().all(|o| o.is_ok()));
}

#[test]
fn round_zero_partition_disqualifies_minority_dealings_only() {
    // {1,2} vs {3..7} split while the shares are in flight. Each
    // minority dealer draws 5 > t complaints (disqualified, as a crashed
    // dealer would be); each majority dealer draws exactly 2 ≤ t and
    // answers publicly. Every player — including the partitioned ones —
    // finishes with a share assembled from the surviving dealings, and
    // all agree.
    let params = ThresholdParams::new(2, 7).unwrap();
    let cfg = standard_config(params, 2, b"partition", false);
    let policy = DeliveryPolicy {
        partitions: vec![Partition {
            from_round: 0,
            until_round: 1,
            group: [1, 2].into_iter().collect(),
        }],
        ..DeliveryPolicy::default()
    };
    let (outputs, _) =
        dkg_session(&cfg, &BTreeMap::new(), 17, &TransportKind::Channel(policy)).unwrap();
    let reference = agreed_output(&outputs);
    assert_eq!(
        reference.qualified,
        [3, 4, 5, 6, 7].into_iter().collect(),
        "minority-side dealings fall, majority-side dealings survive"
    );
    assert!(
        outputs.values().all(|o| o.is_ok()),
        "everyone still gets a share"
    );
}

#[test]
fn round_zero_outage_reads_as_crashed_dealer() {
    // Player 4's links are down while shares travel: its own dealing
    // draws 6 > t complaints (out, exactly like a crashed dealer), while
    // every other dealer answers player 4's complaints publicly — so
    // player 4 still reconstructs its share of the surviving dealings.
    let params = ThresholdParams::new(2, 7).unwrap();
    let cfg = standard_config(params, 2, b"outage", false);
    let policy = DeliveryPolicy {
        outages: vec![Outage {
            player: 4,
            from_round: 0,
            until_round: 1,
        }],
        ..DeliveryPolicy::default()
    };
    let (outputs, _) =
        dkg_session(&cfg, &BTreeMap::new(), 17, &TransportKind::Channel(policy)).unwrap();
    let reference = agreed_output(&outputs);
    assert_eq!(
        reference.qualified,
        [1, 2, 3, 5, 6, 7].into_iter().collect(),
        "the offline player's dealing is out, everyone else's survives"
    );
    assert!(outputs.values().all(|o| o.is_ok()));
    assert!(
        outputs[&4].is_ok(),
        "the offline player recovers via answers"
    );
}

#[test]
fn tcp_loopback_matches_channel_byte_for_byte() {
    // The same DKG over real loopback sockets: per-player TCP metrics
    // merged into the global view must equal the in-process transports
    // exactly — the tentpole parity gate at the protocol level.
    let params = ThresholdParams::new(1, 4).unwrap();
    let cfg = standard_config(params, 2, b"tcp-parity", false);
    let behaviors = BTreeMap::new();
    let (out_chan, m_chan) = dkg_session(
        &cfg,
        &behaviors,
        42,
        &TransportKind::Channel(DeliveryPolicy::reliable()),
    )
    .unwrap();
    let (out_tcp, m_tcp) = dkg_session(
        &cfg,
        &behaviors,
        42,
        &TransportKind::TcpLoopback(DeliveryPolicy::reliable()),
    )
    .unwrap();
    assert!(
        m_chan.same_traffic(&m_tcp),
        "TCP frames must meter byte-identically: {:?} vs {:?}",
        m_chan,
        m_tcp
    );
    let ref_chan = agreed_output(&out_chan);
    let ref_tcp = agreed_output(&out_tcp);
    assert_eq!(ref_chan.qualified, ref_tcp.qualified);
    assert_eq!(ref_chan.combined_commitments, ref_tcp.combined_commitments);
    assert_eq!(ref_chan.share, ref_tcp.share);
}

#[test]
fn tcp_peer_going_silent_mid_run_reads_as_complaints() {
    // Player 3 stops participating after dealing (crash_at_round 1):
    // over real sockets its frames simply never arrive, the complaint
    // round absorbs the absence, and the surviving players agree — with
    // traffic still byte-identical to the in-process transports (the
    // crash is part of the protocol, not of the network).
    let params = ThresholdParams::new(1, 5).unwrap();
    let cfg = standard_config(params, 2, b"tcp-crash", false);
    let mut behaviors = BTreeMap::new();
    behaviors.insert(
        2u32,
        Behavior {
            corrupt_shares_to: [4u32].into_iter().collect(),
            refuse_answers: true,
            ..Default::default()
        },
    );
    behaviors.insert(
        3u32,
        Behavior {
            crash_at_round: Some(1),
            ..Default::default()
        },
    );
    let (out_lock, m_lock) = dkg_session(&cfg, &behaviors, 7, &TransportKind::Lockstep).unwrap();
    let (out_tcp, m_tcp) = dkg_session(
        &cfg,
        &behaviors,
        7,
        &TransportKind::TcpLoopback(DeliveryPolicy::reliable()),
    )
    .unwrap();
    assert!(m_lock.same_traffic(&m_tcp));
    let q = &agreed_output(&out_tcp).qualified;
    assert_eq!(q, &agreed_output(&out_lock).qualified);
    assert!(!q.contains(&2), "refusing dealer is out over TCP too");
}

#[test]
fn tcp_malformed_frames_disqualify_over_real_sockets() {
    // Dealer 2's round-0 frames are corrupted at the real socket
    // boundary (sender-side tamper, after metering — same discipline as
    // the in-process router): receivers apply the strict decode and
    // disqualify, identically to the channel transport.
    let params = ThresholdParams::new(1, 4).unwrap();
    let cfg = standard_config(params, 2, b"tcp-tamper", false);
    for kind in [Tamper::FlipPayloadBit, Tamper::BadVersion] {
        let policy = DeliveryPolicy {
            tamper: vec![TamperRule {
                round: 0,
                from: 2,
                kind,
            }],
            ..DeliveryPolicy::default()
        };
        let (out_tcp, m_tcp) = dkg_session(
            &cfg,
            &BTreeMap::new(),
            11,
            &TransportKind::TcpLoopback(policy.clone()),
        )
        .unwrap();
        let (out_chan, m_chan) =
            dkg_session(&cfg, &BTreeMap::new(), 11, &TransportKind::Channel(policy)).unwrap();
        let reference = agreed_output(&out_tcp);
        assert!(
            !reference.qualified.contains(&2),
            "{:?}: malformed real-socket frames must disqualify",
            kind
        );
        assert_eq!(reference.qualified, agreed_output(&out_chan).qualified);
        // Tampering is rule-driven (no randomness), so even this run
        // meters byte-identically across runtimes.
        assert!(m_chan.same_traffic(&m_tcp));
    }
}

#[test]
fn tcp_faulted_run_matches_channel_byte_for_byte() {
    // Lossy, duplicating, reordering sockets: both runtimes derive their
    // injection schedules from the policy's shared per-sender and
    // per-inbox streams, so the *same* frames are dropped, duplicated
    // and shuffled in the *same* way over real sockets as in-process —
    // the reliable-only parity gate, upgraded to a faulted run. The
    // complaint traffic the loss provokes must therefore meter
    // byte-identically too, and every player must agree.
    let params = ThresholdParams::new(2, 7).unwrap();
    let cfg = standard_config(params, 2, b"tcp-lossy", false);
    let policy = DeliveryPolicy {
        duplicate_rate: 0.05,
        ..DeliveryPolicy::lossy(1, 0.15)
    };
    let (out_chan, m_chan) = dkg_session(
        &cfg,
        &BTreeMap::new(),
        13,
        &TransportKind::Channel(policy.clone()),
    )
    .unwrap();
    let (out_tcp, m_tcp) = dkg_session(
        &cfg,
        &BTreeMap::new(),
        13,
        &TransportKind::TcpLoopback(policy),
    )
    .unwrap();
    assert!(
        m_chan.same_traffic(&m_tcp),
        "identical fault schedules must meter identically: {:?} vs {:?}",
        m_chan,
        m_tcp
    );
    let ref_chan = agreed_output(&out_chan);
    let ref_tcp = agreed_output(&out_tcp);
    assert_eq!(ref_chan.qualified, ref_tcp.qualified);
    assert_eq!(ref_chan.combined_commitments, ref_tcp.combined_commitments);
    assert_eq!(ref_chan.share, ref_tcp.share);
    assert!(
        out_tcp.values().all(|o| o.is_ok()),
        "loss must not wedge the mesh"
    );
    assert!(
        ref_tcp.qualified.len() >= params.n - params.t,
        "loss alone must not disqualify more than t dealers"
    );
    assert!(m_tcp.bytes > 0);
}

#[test]
fn reactor_matches_channel_byte_for_byte() {
    // The event-driven reactor runs the same DKG through one poll loop
    // per process instead of a thread pair per peer. Routing, metering
    // and fault injection live in the shared mesh engine, so the merged
    // metrics must equal the in-process transports bit for bit.
    let params = ThresholdParams::new(1, 4).unwrap();
    let cfg = standard_config(params, 2, b"reactor-parity", false);
    let behaviors = BTreeMap::new();
    let (out_chan, m_chan) = dkg_session(
        &cfg,
        &behaviors,
        42,
        &TransportKind::Channel(DeliveryPolicy::reliable()),
    )
    .unwrap();
    let (out_rx, m_rx) = dkg_session(
        &cfg,
        &behaviors,
        42,
        &TransportKind::TcpReactor(DeliveryPolicy::reliable()),
    )
    .unwrap();
    assert!(
        m_chan.same_traffic(&m_rx),
        "reactor frames must meter byte-identically: {:?} vs {:?}",
        m_chan,
        m_rx
    );
    let ref_chan = agreed_output(&out_chan);
    let ref_rx = agreed_output(&out_rx);
    assert_eq!(ref_chan.qualified, ref_rx.qualified);
    assert_eq!(ref_chan.combined_commitments, ref_rx.combined_commitments);
    assert_eq!(ref_chan.share, ref_rx.share);
}

#[test]
fn reactor_tampered_frames_disqualify_all_kinds() {
    // All four tamper kinds against dealer 2's round-0 frames, applied
    // at the reactor's socket boundary: the strict decode fires on every
    // receiver and the dealer is globally disqualified — identically to
    // the channel transport, because tampering is rule-driven.
    let params = ThresholdParams::new(1, 4).unwrap();
    let cfg = standard_config(params, 2, b"reactor-tamper", false);
    for kind in [
        Tamper::TruncateTail,
        Tamper::AppendByte,
        Tamper::FlipPayloadBit,
        Tamper::BadVersion,
    ] {
        let policy = DeliveryPolicy {
            tamper: vec![TamperRule {
                round: 0,
                from: 2,
                kind,
            }],
            ..DeliveryPolicy::default()
        };
        let (out_rx, m_rx) = dkg_session(
            &cfg,
            &BTreeMap::new(),
            11,
            &TransportKind::TcpReactor(policy.clone()),
        )
        .unwrap();
        let (out_chan, m_chan) =
            dkg_session(&cfg, &BTreeMap::new(), 11, &TransportKind::Channel(policy)).unwrap();
        let reference = agreed_output(&out_rx);
        assert!(
            !reference.qualified.contains(&2),
            "{:?}: malformed reactor frames must disqualify",
            kind
        );
        assert_eq!(reference.qualified.len(), 3);
        assert_eq!(reference.qualified, agreed_output(&out_chan).qualified);
        assert!(m_chan.same_traffic(&m_rx));
    }
}

#[test]
fn reactor_completes_under_drop_and_reorder() {
    // 15% private-frame loss plus duplication and reordering through the
    // poll loop: the complaint machinery absorbs the loss exactly as it
    // does in-process, and the shared policy streams make the injected
    // schedule — and therefore the metered traffic — identical.
    let params = ThresholdParams::new(2, 7).unwrap();
    let cfg = standard_config(params, 2, b"reactor-lossy", false);
    let policy = DeliveryPolicy {
        duplicate_rate: 0.05,
        ..DeliveryPolicy::lossy(1, 0.15)
    };
    let (out_chan, m_chan) = dkg_session(
        &cfg,
        &BTreeMap::new(),
        13,
        &TransportKind::Channel(policy.clone()),
    )
    .unwrap();
    let (out_rx, m_rx) = dkg_session(
        &cfg,
        &BTreeMap::new(),
        13,
        &TransportKind::TcpReactor(policy),
    )
    .unwrap();
    assert!(
        m_chan.same_traffic(&m_rx),
        "identical fault schedules must meter identically: {:?} vs {:?}",
        m_chan,
        m_rx
    );
    let ref_chan = agreed_output(&out_chan);
    let ref_rx = agreed_output(&out_rx);
    assert_eq!(ref_chan.qualified, ref_rx.qualified);
    assert_eq!(ref_chan.share, ref_rx.share);
    assert!(
        out_rx.values().all(|o| o.is_ok()),
        "loss must not wedge the reactor mesh"
    );
    assert!(
        ref_rx.qualified.len() >= params.n - params.t,
        "loss alone must not disqualify more than t dealers"
    );
}

#[test]
fn reactor_peer_going_silent_mid_run_reads_as_complaints() {
    // Player 3 crashes after dealing; player 2 misdeals and refuses to
    // answer. Over the reactor the crashed peer's socket simply stops
    // producing frames — the poll loop observes the quiet (and later the
    // hangup) as round silence, the complaint round absorbs it, and the
    // outcome plus metered traffic match lockstep exactly.
    let params = ThresholdParams::new(1, 5).unwrap();
    let cfg = standard_config(params, 2, b"reactor-crash", false);
    let mut behaviors = BTreeMap::new();
    behaviors.insert(
        2u32,
        Behavior {
            corrupt_shares_to: [4u32].into_iter().collect(),
            refuse_answers: true,
            ..Default::default()
        },
    );
    behaviors.insert(
        3u32,
        Behavior {
            crash_at_round: Some(1),
            ..Default::default()
        },
    );
    let (out_lock, m_lock) = dkg_session(&cfg, &behaviors, 7, &TransportKind::Lockstep).unwrap();
    let (out_rx, m_rx) = dkg_session(
        &cfg,
        &behaviors,
        7,
        &TransportKind::TcpReactor(DeliveryPolicy::reliable()),
    )
    .unwrap();
    assert!(m_lock.same_traffic(&m_rx));
    let q = &agreed_output(&out_rx).qualified;
    assert_eq!(q, &agreed_output(&out_lock).qualified);
    assert!(
        !q.contains(&2),
        "refusing dealer is out over the reactor too"
    );
}

#[test]
fn frame_sizes_match_wire_size_exactly() {
    // The E5 byte metric is derived from real frames; `wire_size` is the
    // blanket projection of the same codec. A run's total bytes must be
    // exactly sum(message wire_size) + messages (one version byte each).
    use borndist_dkg::DkgMessage;
    let msg = DkgMessage::Complaints {
        against: vec![1, 2, 3],
    };
    assert_eq!(borndist_net::encode_frame(&msg).len(), msg.wire_size() + 1);
}
