//! End-to-end tests of the DKG protocol under honest and Byzantine
//! executions, plus refresh and recovery.

use borndist_dkg::{
    apply_refresh, apply_refresh_commitments, dkg_session, recover_share, refresh_session,
    standard_config, Behavior, DkgAbort, DkgOutput, Helper,
};
use borndist_net::TransportKind;
use borndist_pairing::{Fr, G2Affine};
use borndist_shamir::{interpolate_at, PedersenShare, ThresholdParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

fn honest_run(t: usize, n: usize, seed: u64) -> BTreeMap<u32, DkgOutput> {
    let cfg = standard_config(ThresholdParams::new(t, n).unwrap(), 2, b"test", false);
    let (outputs, _) = dkg_session(&cfg, &BTreeMap::new(), seed, &TransportKind::Lockstep).unwrap();
    outputs
        .into_iter()
        .map(|(id, o)| (id, o.expect("honest players succeed")))
        .collect()
}

/// All honest players agree on Q, the public key, and the verification
/// keys, and every share opens the combined commitment.
#[test]
fn honest_run_reaches_agreement() {
    let cfg = standard_config(ThresholdParams::new(2, 5).unwrap(), 2, b"test", false);
    let (outputs, metrics) =
        dkg_session(&cfg, &BTreeMap::new(), 7, &TransportKind::Lockstep).unwrap();
    let outs: Vec<&DkgOutput> = outputs.values().map(|o| o.as_ref().unwrap()).collect();

    // Agreement on Q (everyone qualified) and on the public key.
    let pk = outs[0].public_key_coordinates();
    for o in &outs {
        assert_eq!(o.qualified.len(), 5);
        assert_eq!(o.public_key_coordinates(), pk);
        assert_eq!(o.combined_commitments, outs[0].combined_commitments);
    }

    // Every player's share opens the combined commitment at its index.
    for o in &outs {
        for (k, (a, b)) in o.share.iter().enumerate() {
            let share = PedersenShare {
                index: o.id,
                a: *a,
                b: *b,
            };
            assert!(o.combined_commitments[k].verify_share(&cfg.bases, &share));
        }
    }

    // Verification keys agree across players.
    for i in 1..=5u32 {
        let vk = outs[0].verification_key(i);
        for o in &outs {
            assert_eq!(o.verification_key(i), vk);
        }
    }

    // The paper's headline: one active communication round when honest.
    assert_eq!(metrics.active_rounds, 1);
}

/// Interpolating t+1 shares recovers the sum of the qualified dealers'
/// additive secrets — the joint secret key.
#[test]
fn shares_interpolate_to_joint_secret() {
    let outputs = honest_run(2, 5, 99);
    for k in 0..2usize {
        let joint_a: Fr = outputs
            .values()
            .map(|o| o.additive_secret[k].0)
            .fold(Fr::zero(), |acc, v| acc + v);
        let pts: Vec<(u32, Fr)> = outputs
            .values()
            .take(3)
            .map(|o| (o.id, o.share[k].0))
            .collect();
        let secret = interpolate_at(&pts, Fr::zero()).unwrap();
        assert_eq!(secret, joint_a);
    }
}

/// A dealer that lies to one player is caught by a complaint, answers
/// publicly, and stays qualified; the victim adopts the public share.
#[test]
fn corrupt_share_is_repaired_by_complaint_round() {
    let cfg = standard_config(ThresholdParams::new(2, 5).unwrap(), 2, b"test", false);
    let mut behaviors = BTreeMap::new();
    behaviors.insert(
        2u32,
        Behavior {
            corrupt_shares_to: [4u32].into_iter().collect(),
            ..Default::default()
        },
    );
    let (outputs, metrics) = dkg_session(&cfg, &behaviors, 11, &TransportKind::Lockstep).unwrap();
    let outs: BTreeMap<u32, DkgOutput> = outputs
        .into_iter()
        .map(|(id, o)| (id, o.unwrap()))
        .collect();
    // Dealer 2 answered correctly, so it remains qualified.
    assert!(outs[&1].qualified.contains(&2));
    // Player 4's share still opens the combined commitment.
    let o4 = &outs[&4];
    for (k, (a, b)) in o4.share.iter().enumerate() {
        let share = PedersenShare {
            index: 4,
            a: *a,
            b: *b,
        };
        assert!(o4.combined_commitments[k].verify_share(&cfg.bases, &share));
    }
    // Complaint and answer rounds were active: 3 active rounds total.
    assert_eq!(metrics.active_rounds, 3);
    // All players agree on the public key.
    let pk = outs[&1].public_key_coordinates();
    for o in outs.values() {
        assert_eq!(o.public_key_coordinates(), pk);
    }
}

/// A dealer that refuses to answer a justified complaint is disqualified.
#[test]
fn unanswered_complaint_disqualifies_dealer() {
    let cfg = standard_config(ThresholdParams::new(2, 5).unwrap(), 2, b"test", false);
    let mut behaviors = BTreeMap::new();
    behaviors.insert(
        3u32,
        Behavior {
            corrupt_shares_to: [1u32].into_iter().collect(),
            refuse_answers: true,
            ..Default::default()
        },
    );
    let (outputs, _) = dkg_session(&cfg, &behaviors, 13, &TransportKind::Lockstep).unwrap();
    for (id, o) in outputs {
        let o = o.unwrap();
        assert!(!o.qualified.contains(&3), "player {} still trusts 3", id);
        assert_eq!(o.qualified.len(), 4);
    }
}

/// A dealer that withholds shares entirely is complained against and,
/// refusing to answer, disqualified.
#[test]
fn withholding_dealer_disqualified() {
    let cfg = standard_config(ThresholdParams::new(1, 4).unwrap(), 2, b"test", false);
    let mut behaviors = BTreeMap::new();
    behaviors.insert(
        2u32,
        Behavior {
            withhold_shares_from: [1u32, 3, 4].into_iter().collect(),
            refuse_answers: true,
            ..Default::default()
        },
    );
    let (outputs, _) = dkg_session(&cfg, &behaviors, 17, &TransportKind::Lockstep).unwrap();
    for o in outputs.values() {
        assert!(!o.as_ref().unwrap().qualified.contains(&2));
    }
}

/// A player that crashes before dealing is excluded; the rest proceed.
#[test]
fn crash_before_dealing_excluded() {
    let cfg = standard_config(ThresholdParams::new(1, 5).unwrap(), 2, b"test", false);
    let mut behaviors = BTreeMap::new();
    behaviors.insert(
        5u32,
        Behavior {
            crash_at_round: Some(0),
            ..Default::default()
        },
    );
    let (outputs, _) = dkg_session(&cfg, &behaviors, 19, &TransportKind::Lockstep).unwrap();
    assert_eq!(outputs[&5], Err(DkgAbort::Crashed));
    for id in 1u32..=4 {
        let o = outputs[&id].as_ref().unwrap();
        assert!(!o.qualified.contains(&5));
        assert_eq!(o.qualified.len(), 4);
    }
}

/// A crash after dealing leaves the dealer's contribution in the key
/// (its sharing is complete and verifiable; no complaints arise).
#[test]
fn crash_after_dealing_keeps_contribution() {
    let cfg = standard_config(ThresholdParams::new(1, 5).unwrap(), 2, b"test", false);
    let mut behaviors = BTreeMap::new();
    behaviors.insert(
        5u32,
        Behavior {
            crash_at_round: Some(1),
            ..Default::default()
        },
    );
    let (outputs, _) = dkg_session(&cfg, &behaviors, 23, &TransportKind::Lockstep).unwrap();
    for id in 1u32..=4 {
        let o = outputs[&id].as_ref().unwrap();
        assert!(o.qualified.contains(&5), "silent-but-honest dealer kept");
    }
}

/// False accusations do not harm an honest dealer.
#[test]
fn false_accusation_is_harmless() {
    let cfg = standard_config(ThresholdParams::new(2, 5).unwrap(), 2, b"test", false);
    let mut behaviors = BTreeMap::new();
    behaviors.insert(
        4u32,
        Behavior {
            false_complaints: vec![1, 2],
            ..Default::default()
        },
    );
    let (outputs, _) = dkg_session(&cfg, &behaviors, 29, &TransportKind::Lockstep).unwrap();
    for o in outputs.values() {
        let o = o.as_ref().unwrap();
        assert!(o.qualified.contains(&1));
        assert!(o.qualified.contains(&2));
        assert_eq!(o.qualified.len(), 5);
    }
}

/// Malformed commitment broadcasts disqualify immediately.
#[test]
fn malformed_broadcast_disqualifies() {
    let cfg = standard_config(ThresholdParams::new(1, 4).unwrap(), 2, b"test", false);
    let mut behaviors = BTreeMap::new();
    behaviors.insert(
        1u32,
        Behavior {
            bad_commitment_width: true,
            ..Default::default()
        },
    );
    let (outputs, _) = dkg_session(&cfg, &behaviors, 31, &TransportKind::Lockstep).unwrap();
    for id in 2u32..=4 {
        assert!(!outputs[&id].as_ref().unwrap().qualified.contains(&1));
    }
}

/// The Appendix G aggregate witness is checked and combined.
#[test]
fn aggregate_witness_combines() {
    use borndist_pairing::multi_pairing;
    let cfg = standard_config(ThresholdParams::new(1, 4).unwrap(), 2, b"agg-test", true);
    let (outputs, _) = dkg_session(&cfg, &BTreeMap::new(), 37, &TransportKind::Lockstep).unwrap();
    let o = outputs[&1].as_ref().unwrap();
    let witness = o.aggregate_witness.expect("witness present");
    let pk = o.public_key_coordinates();
    let agg = cfg.aggregate.unwrap();
    // e(Z, g_z)·e(R, g_r)·e(g, pk_1)·e(h, pk_2) = 1.
    assert!(multi_pairing(&[
        (&witness.z0, &cfg.bases.g_z),
        (&witness.r0, &cfg.bases.g_r),
        (&agg.g, &pk[0]),
        (&agg.h, &pk[1]),
    ])
    .is_identity());
}

/// A bad aggregate witness gets its dealer disqualified.
#[test]
fn bad_aggregate_witness_disqualifies() {
    let cfg = standard_config(ThresholdParams::new(1, 4).unwrap(), 2, b"agg-test", true);
    let mut behaviors = BTreeMap::new();
    behaviors.insert(
        3u32,
        Behavior {
            bad_aggregate_witness: true,
            ..Default::default()
        },
    );
    let (outputs, _) = dkg_session(&cfg, &behaviors, 41, &TransportKind::Lockstep).unwrap();
    for id in [1u32, 2, 4] {
        assert!(!outputs[&id].as_ref().unwrap().qualified.contains(&3));
    }
}

/// Proactive refresh: shares change, public key and joint secret do not.
#[test]
fn refresh_preserves_public_key_and_secret() {
    let cfg = standard_config(ThresholdParams::new(2, 5).unwrap(), 2, b"test", false);
    let (outputs, _) = dkg_session(&cfg, &BTreeMap::new(), 43, &TransportKind::Lockstep).unwrap();
    let outs: BTreeMap<u32, DkgOutput> = outputs
        .into_iter()
        .map(|(id, o)| (id, o.unwrap()))
        .collect();
    let pk = outs[&1].public_key_coordinates();
    let old_secret = {
        let pts: Vec<(u32, Fr)> = outs
            .values()
            .take(3)
            .map(|o| (o.id, o.share[0].0))
            .collect();
        interpolate_at(&pts, Fr::zero()).unwrap()
    };

    let (refresh_outputs, _) =
        refresh_session(&cfg, &BTreeMap::new(), 44, &TransportKind::Lockstep).unwrap();
    let new_shares: BTreeMap<u32, Vec<(Fr, Fr)>> = outs
        .iter()
        .map(|(id, o)| {
            let r = refresh_outputs[id].as_ref().unwrap();
            (*id, apply_refresh(&o.share, r))
        })
        .collect();
    let new_commitments = apply_refresh_commitments(
        &outs[&1].combined_commitments,
        refresh_outputs[&1].as_ref().unwrap(),
    );

    // Public key unchanged.
    let new_pk: Vec<G2Affine> = new_commitments
        .iter()
        .map(|c| c.constant_commitment())
        .collect();
    assert_eq!(new_pk, pk);

    // Joint secret unchanged, but individual shares changed.
    let pts: Vec<(u32, Fr)> = new_shares
        .iter()
        .take(3)
        .map(|(id, s)| (*id, s[0].0))
        .collect();
    assert_eq!(interpolate_at(&pts, Fr::zero()).unwrap(), old_secret);
    assert_ne!(new_shares[&1][0].0, outs[&1].share[0].0);

    // New shares open the refreshed commitments; old ones do not.
    for (id, s) in &new_shares {
        let share = PedersenShare {
            index: *id,
            a: s[0].0,
            b: s[0].1,
        };
        assert!(new_commitments[0].verify_share(&cfg.bases, &share));
        let stale = PedersenShare {
            index: *id,
            a: outs[id].share[0].0,
            b: outs[id].share[0].1,
        };
        assert!(!new_commitments[0].verify_share(&cfg.bases, &stale));
    }
}

/// A refresh dealer that deals a non-zero secret is disqualified.
#[test]
fn nonzero_refresh_dealer_disqualified() {
    let cfg = standard_config(ThresholdParams::new(1, 4).unwrap(), 2, b"test", false);
    let mut behaviors = BTreeMap::new();
    behaviors.insert(
        2u32,
        Behavior {
            nonzero_refresh: true,
            ..Default::default()
        },
    );
    let (outputs, _) = refresh_session(&cfg, &behaviors, 47, &TransportKind::Lockstep).unwrap();
    for id in [1u32, 3, 4] {
        assert!(!outputs[&id].as_ref().unwrap().qualified.contains(&2));
    }
}

/// Share recovery restores a lost share exactly.
#[test]
fn recovery_restores_share() {
    let outputs = honest_run(2, 5, 53);
    let cfg = standard_config(ThresholdParams::new(2, 5).unwrap(), 2, b"test", false);
    let target = 3u32;
    let expected = outputs[&target].share[0];

    let helpers: Vec<Helper> = [1u32, 2, 4]
        .iter()
        .map(|id| Helper {
            id: *id,
            share: outputs[id].share[0],
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(54);
    let recovered = recover_share(
        &cfg.bases,
        &outputs[&1].combined_commitments[0],
        2,
        &helpers,
        target,
        &mut rng,
    )
    .unwrap();
    assert_eq!(recovered, expected);
}

/// Recovery fails cleanly with too few helpers.
#[test]
fn recovery_needs_threshold_helpers() {
    let outputs = honest_run(2, 5, 59);
    let cfg = standard_config(ThresholdParams::new(2, 5).unwrap(), 2, b"test", false);
    let helpers: Vec<Helper> = [1u32, 2]
        .iter()
        .map(|id| Helper {
            id: *id,
            share: outputs[id].share[0],
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(60);
    let err = recover_share(
        &cfg.bases,
        &outputs[&1].combined_commitments[0],
        2,
        &helpers,
        3,
        &mut rng,
    )
    .unwrap_err();
    assert!(matches!(
        err,
        borndist_dkg::RecoveryError::NotEnoughHelpers { have: 2, need: 3 }
    ));
}

/// Recovery detects a helper lying about its share.
#[test]
fn recovery_detects_bad_helper_share() {
    let outputs = honest_run(2, 5, 61);
    let cfg = standard_config(ThresholdParams::new(2, 5).unwrap(), 2, b"test", false);
    let mut helpers: Vec<Helper> = [1u32, 2, 4]
        .iter()
        .map(|id| Helper {
            id: *id,
            share: outputs[id].share[0],
        })
        .collect();
    helpers[1].share.0 += Fr::one();
    let mut rng = StdRng::seed_from_u64(62);
    let err = recover_share(
        &cfg.bases,
        &outputs[&1].combined_commitments[0],
        2,
        &helpers,
        3,
        &mut rng,
    )
    .unwrap_err();
    assert_eq!(err, borndist_dkg::RecoveryError::CommitmentMismatch);
}

/// Larger instance smoke test: n = 13, t = 4, several simultaneous
/// faults of different kinds.
#[test]
fn mixed_faults_large_instance() {
    let cfg = standard_config(ThresholdParams::new(4, 13).unwrap(), 2, b"big", false);
    let mut behaviors = BTreeMap::new();
    behaviors.insert(
        2u32,
        Behavior {
            corrupt_shares_to: [7u32, 8].into_iter().collect(),
            ..Default::default()
        },
    );
    behaviors.insert(
        5u32,
        Behavior {
            crash_at_round: Some(0),
            ..Default::default()
        },
    );
    behaviors.insert(
        9u32,
        Behavior {
            corrupt_shares_to: [1u32].into_iter().collect(),
            refuse_answers: true,
            ..Default::default()
        },
    );
    behaviors.insert(
        11u32,
        Behavior {
            false_complaints: vec![3],
            ..Default::default()
        },
    );
    let (outputs, _) = dkg_session(&cfg, &behaviors, 67, &TransportKind::Lockstep).unwrap();
    let mut reference: Option<DkgOutput> = None;
    for (id, o) in &outputs {
        if *id == 5 {
            assert_eq!(*o, Err(DkgAbort::Crashed));
            continue;
        }
        let o = o.as_ref().unwrap();
        // 5 (crashed) and 9 (refused answer) are out; 2 answered and 3
        // was falsely accused — both stay.
        assert!(!o.qualified.contains(&5));
        assert!(!o.qualified.contains(&9));
        assert!(o.qualified.contains(&2));
        assert!(o.qualified.contains(&3));
        if let Some(r) = &reference {
            assert_eq!(o.qualified, r.qualified);
            assert_eq!(o.public_key_coordinates(), r.public_key_coordinates());
        } else {
            reference = Some(o.clone());
        }
    }
}

/// PartialEq for DkgOutput-bearing results in the assertions above.
#[test]
fn outputs_expose_short_shares() {
    // E4 sanity: a share is width·2 scalars = 128 bytes at width 2,
    // independent of n.
    for n in [4usize, 8, 16] {
        let outputs = honest_run(1, n, 71);
        let o = &outputs[&1];
        assert_eq!(o.share.len(), 2);
    }
}

/// Equivocating on the broadcast channel (two conflicting commitment
/// messages) leads to global disqualification.
#[test]
fn equivocation_disqualifies() {
    let cfg = standard_config(ThresholdParams::new(1, 4).unwrap(), 2, b"test", false);
    let mut behaviors = BTreeMap::new();
    behaviors.insert(
        3u32,
        Behavior {
            equivocate_commitments: true,
            ..Default::default()
        },
    );
    let (outputs, _) = dkg_session(&cfg, &behaviors, 73, &TransportKind::Lockstep).unwrap();
    for id in [1u32, 2, 4] {
        let o = outputs[&id].as_ref().unwrap();
        assert!(!o.qualified.contains(&3), "player {} kept equivocator", id);
        assert_eq!(o.qualified.len(), 3);
    }
}

/// The DKG refuses parameter sets without an honest majority.
#[test]
#[should_panic(expected = "n >= 2t + 1")]
fn dishonest_majority_parameters_rejected() {
    let cfg = standard_config(ThresholdParams::new(3, 4).unwrap(), 2, b"test", false);
    let _ = dkg_session(&cfg, &BTreeMap::new(), 79, &TransportKind::Lockstep);
}
