//! Proactive share refresh (§3.3).
//!
//! At the start of each period the players run a fresh instance of the
//! DKG in [`SharingMode::Refresh`]: every dealer shares the pair `(0, 0)`
//! (checked publicly via `Ŵ_{ik0} = 1`), and each player adds the
//! resulting shares to its current ones. The joint secret — and hence the
//! public key — is unchanged, while any set of ≤ t shares from *different
//! periods* becomes useless to a mobile adversary.

use crate::player::{Behavior, DkgConfig, DkgOutput, SharingMode, SimulatedRunResult};
use borndist_net::PlayerId;
use borndist_pairing::Fr;
use borndist_shamir::PedersenCommitment;
use std::collections::BTreeMap;

/// The per-player outcome of one refresh period.
#[derive(Clone, Debug)]
pub struct RefreshOutput {
    /// The refresh-DKG output (zero-constant sharings).
    pub dkg: DkgOutput,
}

/// Applies a refresh to an existing share vector: componentwise addition
/// of the zero-sharing shares.
pub fn apply_refresh(old_share: &[(Fr, Fr)], refresh: &DkgOutput) -> Vec<(Fr, Fr)> {
    assert_eq!(
        old_share.len(),
        refresh.share.len(),
        "refresh width must match the original sharing"
    );
    old_share
        .iter()
        .zip(refresh.share.iter())
        .map(|((a, b), (da, db))| (*a + *da, *b + *db))
        .collect()
}

/// Updates the combined commitments (and hence every verification key)
/// after a refresh: coefficient-wise product with the refresh
/// commitments. The constant coefficients — the public key — are
/// unchanged because the refresh constant commitments are identities.
pub fn apply_refresh_commitments(
    old: &[PedersenCommitment],
    refresh: &DkgOutput,
) -> Vec<PedersenCommitment> {
    old.iter()
        .zip(refresh.combined_commitments.iter())
        .map(|(a, b)| a.combine(b))
        .collect()
}

/// Runs one refresh period over any transport (refresh messages are
/// ordinary [`crate::DkgMessage`] frames, so everything said about
/// [`crate::dkg_session`] applies).
///
/// `cfg` must describe the *original* DKG (same width, bases, params);
/// its mode is overridden to [`SharingMode::Refresh`].
pub fn refresh_session(
    cfg: &DkgConfig,
    behaviors: &BTreeMap<PlayerId, Behavior>,
    seed: u64,
    transport: &borndist_net::TransportKind,
) -> SimulatedRunResult {
    let mut refresh_cfg = cfg.clone();
    refresh_cfg.mode = SharingMode::Refresh;
    // The Appendix G witness commits to the *key* constants, which are all
    // zero during refresh; skip it.
    refresh_cfg.aggregate = None;
    crate::player::dkg_session(&refresh_cfg, behaviors, seed, transport)
}
