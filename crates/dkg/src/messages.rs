//! Wire messages of the distributed key generation protocol.

use borndist_net::WireSize;
use borndist_pairing::{Fr, G1Affine};
use borndist_shamir::{PedersenCommitment, PedersenShare};
use serde::{Deserialize, Serialize};

/// The extra broadcast of the Appendix G (aggregate-capable) variant:
/// a one-time LHSPS signature `(Z_{i0}, R_{i0})` on the public vector
/// `(g, h)` under the dealer's constant-coefficient key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AggregateWitness {
    /// `Z_{i0} = g^{-a_{i10}} h^{-a_{i20}}`.
    pub z0: G1Affine,
    /// `R_{i0} = g^{-b_{i10}} h^{-b_{i20}}`.
    pub r0: G1Affine,
}

/// A DKG message. One `enum` covers all four rounds; the honest state
/// machine never sends a variant outside its round, but Byzantine players
/// may (and receivers must tolerate it).
//
// `Commitments` dominates the enum size because `AggregateWitness` is two
// inline curve points; boxing it would cost an allocation per broadcast
// and break the field's `Copy` flow through the player state machine.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum DkgMessage {
    /// Round 0 broadcast: the dealer's Pedersen commitments, one
    /// commitment vector per parallel sharing (`width` of them), plus the
    /// optional aggregate witness.
    Commitments {
        /// `Ŵ_{ikℓ}` for each sharing `k`.
        commitments: Vec<PedersenCommitment>,
        /// Appendix G extension, when enabled.
        aggregate: Option<AggregateWitness>,
    },
    /// Round 0 private message: the dealer's shares for the recipient,
    /// one `(A_k(j), B_k(j))` pair per parallel sharing.
    Shares {
        /// Shares in sharing order (all carry the recipient's index).
        shares: Vec<PedersenShare>,
    },
    /// Round 1 broadcast: complaints against dealers whose share failed
    /// equation (1) or never arrived.
    Complaints {
        /// Accused dealer ids.
        against: Vec<u32>,
    },
    /// Round 2 broadcast: a dealer's answer to complaints — the correct
    /// shares of every complainer, publicly revealed.
    ComplaintAnswers {
        /// `(complainer, shares-for-complainer)` pairs.
        answers: Vec<(u32, Vec<PedersenShare>)>,
    },
}

const G1_BYTES: usize = 48;
const G2_BYTES: usize = 96;
const FR_BYTES: usize = core::mem::size_of::<Fr>() / core::mem::size_of::<u64>() * 8;

fn share_size() -> usize {
    4 + 2 * FR_BYTES
}

fn commitment_size(c: &PedersenCommitment) -> usize {
    4 + G2_BYTES * c.len()
}

impl WireSize for DkgMessage {
    fn wire_size(&self) -> usize {
        1 + match self {
            DkgMessage::Commitments {
                commitments,
                aggregate,
            } => {
                4 + commitments.iter().map(commitment_size).sum::<usize>()
                    + 1
                    + aggregate.map_or(0, |_| 2 * G1_BYTES)
            }
            DkgMessage::Shares { shares } => 4 + shares.len() * share_size(),
            DkgMessage::Complaints { against } => 4 + 4 * against.len(),
            DkgMessage::ComplaintAnswers { answers } => {
                4 + answers
                    .iter()
                    .map(|(_, shares)| 4 + 4 + shares.len() * share_size())
                    .sum::<usize>()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use borndist_pairing::G2Projective;
    use borndist_shamir::{PedersenBases, PedersenSharing};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn wire_sizes_reflect_payload() {
        let mut r = StdRng::seed_from_u64(1);
        let bases = PedersenBases {
            g_z: G2Projective::random(&mut r).to_affine(),
            g_r: G2Projective::random(&mut r).to_affine(),
        };
        let sharing = PedersenSharing::deal_random(&bases, 3, &mut r);
        let msg = DkgMessage::Commitments {
            commitments: vec![sharing.commitment.clone(), sharing.commitment.clone()],
            aggregate: None,
        };
        // 1 tag + 4 vec len + 2 * (4 + 4*96) + 1 option tag
        assert_eq!(msg.wire_size(), 1 + 4 + 2 * (4 + 4 * 96) + 1);

        let shares = DkgMessage::Shares {
            shares: vec![sharing.share_for(1), sharing.share_for(1)],
        };
        assert_eq!(shares.wire_size(), 1 + 4 + 2 * (4 + 64));

        let complaints = DkgMessage::Complaints {
            against: vec![1, 2],
        };
        assert_eq!(complaints.wire_size(), 1 + 4 + 8);
    }

    #[test]
    fn serde_roundtrip() {
        let mut r = StdRng::seed_from_u64(2);
        let bases = PedersenBases {
            g_z: G2Projective::random(&mut r).to_affine(),
            g_r: G2Projective::random(&mut r).to_affine(),
        };
        let sharing = PedersenSharing::deal_random(&bases, 2, &mut r);
        let msg = DkgMessage::ComplaintAnswers {
            answers: vec![(3, vec![sharing.share_for(3)])],
        };
        let enc = serde_json::to_string(&msg).unwrap();
        let dec: DkgMessage = serde_json::from_str(&enc).unwrap();
        match dec {
            DkgMessage::ComplaintAnswers { answers } => {
                assert_eq!(answers.len(), 1);
                assert_eq!(answers[0].0, 3);
                assert_eq!(answers[0].1[0], sharing.share_for(3));
            }
            _ => panic!("wrong variant"),
        }
    }
}
