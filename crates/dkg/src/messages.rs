//! Wire messages of the distributed key generation protocol.
//!
//! Every variant has a canonical byte encoding ([`Wire`]): a 1-byte
//! variant tag followed by the fields, with group elements in their
//! compressed subgroup-checked form and scalars canonical. The strict
//! decoder is the first line of the protocol's input validation — a
//! frame that fails to decode is treated by [`crate::DkgPlayer`] exactly
//! like a malformed broadcast or a missing share (decode-validate-then-
//! process), never as a crash.

use borndist_pairing::codec::{CodecError, Wire};
use borndist_pairing::G1Affine;
use borndist_shamir::{PedersenCommitment, PedersenShare};
use serde::{Deserialize, Serialize};

/// The extra broadcast of the Appendix G (aggregate-capable) variant:
/// a one-time LHSPS signature `(Z_{i0}, R_{i0})` on the public vector
/// `(g, h)` under the dealer's constant-coefficient key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AggregateWitness {
    /// `Z_{i0} = g^{-a_{i10}} h^{-a_{i20}}`.
    pub z0: G1Affine,
    /// `R_{i0} = g^{-b_{i10}} h^{-b_{i20}}`.
    pub r0: G1Affine,
}

impl Wire for AggregateWitness {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.z0.encode_to(out);
        self.r0.encode_to(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(AggregateWitness {
            z0: G1Affine::decode(input)?,
            r0: G1Affine::decode(input)?,
        })
    }
}

/// A DKG message. One `enum` covers all four rounds; the honest state
/// machine never sends a variant outside its round, but Byzantine players
/// may (and receivers must tolerate it).
//
// `Commitments` dominates the enum size because `AggregateWitness` is two
// inline curve points; boxing it would cost an allocation per broadcast
// and break the field's `Copy` flow through the player state machine.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum DkgMessage {
    /// Round 0 broadcast: the dealer's Pedersen commitments, one
    /// commitment vector per parallel sharing (`width` of them), plus the
    /// optional aggregate witness.
    Commitments {
        /// `Ŵ_{ikℓ}` for each sharing `k`.
        commitments: Vec<PedersenCommitment>,
        /// Appendix G extension, when enabled.
        aggregate: Option<AggregateWitness>,
    },
    /// Round 0 private message: the dealer's shares for the recipient,
    /// one `(A_k(j), B_k(j))` pair per parallel sharing.
    Shares {
        /// Shares in sharing order (all carry the recipient's index).
        shares: Vec<PedersenShare>,
    },
    /// Round 1 broadcast: complaints against dealers whose share failed
    /// equation (1) or never arrived.
    Complaints {
        /// Accused dealer ids.
        against: Vec<u32>,
    },
    /// Round 2 broadcast: a dealer's answer to complaints — the correct
    /// shares of every complainer, publicly revealed.
    ComplaintAnswers {
        /// `(complainer, shares-for-complainer)` pairs.
        answers: Vec<(u32, Vec<PedersenShare>)>,
    },
}

const TAG_COMMITMENTS: u8 = 0;
const TAG_SHARES: u8 = 1;
const TAG_COMPLAINTS: u8 = 2;
const TAG_COMPLAINT_ANSWERS: u8 = 3;

impl Wire for DkgMessage {
    fn encode_to(&self, out: &mut Vec<u8>) {
        match self {
            DkgMessage::Commitments {
                commitments,
                aggregate,
            } => {
                out.push(TAG_COMMITMENTS);
                commitments.encode_to(out);
                aggregate.encode_to(out);
            }
            DkgMessage::Shares { shares } => {
                out.push(TAG_SHARES);
                shares.encode_to(out);
            }
            DkgMessage::Complaints { against } => {
                out.push(TAG_COMPLAINTS);
                against.encode_to(out);
            }
            DkgMessage::ComplaintAnswers { answers } => {
                out.push(TAG_COMPLAINT_ANSWERS);
                answers.encode_to(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        match u8::decode(input)? {
            TAG_COMMITMENTS => Ok(DkgMessage::Commitments {
                commitments: Vec::decode(input)?,
                aggregate: Option::decode(input)?,
            }),
            TAG_SHARES => Ok(DkgMessage::Shares {
                shares: Vec::decode(input)?,
            }),
            TAG_COMPLAINTS => Ok(DkgMessage::Complaints {
                against: Vec::decode(input)?,
            }),
            TAG_COMPLAINT_ANSWERS => Ok(DkgMessage::ComplaintAnswers {
                answers: Vec::decode(input)?,
            }),
            tag => Err(CodecError::InvalidTag(tag)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use borndist_net::WireSize;
    use borndist_pairing::G2Projective;
    use borndist_shamir::{PedersenBases, PedersenSharing};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The closed-form sizes the retired estimate trait used to report.
    /// Kept as an independent cross-check that the real encoder produces
    /// exactly the compact layout the E5 experiment always claimed
    /// (1-byte tag, 4-byte lengths, 48/96-byte points, 32-byte scalars).
    fn estimated_size(msg: &DkgMessage) -> usize {
        const G1: usize = 48;
        const G2: usize = 96;
        const FR: usize = 32;
        let share = 4 + 2 * FR;
        1 + match msg {
            DkgMessage::Commitments {
                commitments,
                aggregate,
            } => {
                4 + commitments.iter().map(|c| 4 + G2 * c.len()).sum::<usize>()
                    + 1
                    + aggregate.map_or(0, |_| 2 * G1)
            }
            DkgMessage::Shares { shares } => 4 + shares.len() * share,
            DkgMessage::Complaints { against } => 4 + 4 * against.len(),
            DkgMessage::ComplaintAnswers { answers } => {
                4 + answers
                    .iter()
                    .map(|(_, shares)| 4 + 4 + shares.len() * share)
                    .sum::<usize>()
            }
        }
    }

    fn sharing(seed: u64, t: usize) -> (PedersenBases, PedersenSharing) {
        let mut r = StdRng::seed_from_u64(seed);
        let bases = PedersenBases {
            g_z: G2Projective::random(&mut r).to_affine(),
            g_r: G2Projective::random(&mut r).to_affine(),
        };
        let sharing = PedersenSharing::deal_random(&bases, t, &mut r);
        (bases, sharing)
    }

    #[test]
    fn encoded_lengths_match_the_retired_estimates() {
        let (_, s) = sharing(1, 3);
        let all = [
            DkgMessage::Commitments {
                commitments: vec![s.commitment.clone(), s.commitment.clone()],
                aggregate: None,
            },
            DkgMessage::Shares {
                shares: vec![s.share_for(1), s.share_for(2)],
            },
            DkgMessage::Complaints {
                against: vec![1, 2],
            },
            DkgMessage::ComplaintAnswers {
                answers: vec![(3, vec![s.share_for(3)]), (4, vec![s.share_for(4)])],
            },
        ];
        for msg in &all {
            assert_eq!(
                msg.wire_size(),
                estimated_size(msg),
                "encoder layout drifted from the documented compact format"
            );
            assert_eq!(msg.wire_size(), msg.encode().len());
        }
        // Spot values (t = 3 ⇒ 4 commitment coefficients).
        assert_eq!(all[0].wire_size(), 1 + 4 + 2 * (4 + 4 * 96) + 1);
        assert_eq!(all[1].wire_size(), 1 + 4 + 2 * (4 + 64));
        assert_eq!(all[2].wire_size(), 1 + 4 + 8);
    }

    #[test]
    fn wire_roundtrip_all_variants() {
        let (_, s) = sharing(2, 2);
        let witness = AggregateWitness {
            z0: borndist_pairing::G1Projective::generator().to_affine(),
            r0: borndist_pairing::G1Projective::generator()
                .double()
                .to_affine(),
        };
        let msgs = [
            DkgMessage::Commitments {
                commitments: vec![s.commitment.clone()],
                aggregate: Some(witness),
            },
            DkgMessage::Shares {
                shares: vec![s.share_for(5)],
            },
            DkgMessage::Complaints { against: vec![7] },
            DkgMessage::ComplaintAnswers {
                answers: vec![(3, vec![s.share_for(3)])],
            },
        ];
        for msg in &msgs {
            let enc = msg.encode();
            let dec = DkgMessage::decode_exact(&enc).unwrap();
            // DkgMessage has no PartialEq (commitments are compared
            // through their group elements); compare re-encodings.
            assert_eq!(dec.encode(), enc);
        }
    }

    #[test]
    fn strict_rejection() {
        let (_, s) = sharing(3, 2);
        let msg = DkgMessage::Shares {
            shares: vec![s.share_for(1)],
        };
        let enc = msg.encode();
        // Trailing byte.
        let mut trailing = enc.clone();
        trailing.push(0);
        assert!(matches!(
            DkgMessage::decode_exact(&trailing),
            Err(CodecError::TrailingBytes { remaining: 1 })
        ));
        // Unknown variant tag.
        let mut bad_tag = enc.clone();
        bad_tag[0] = 9;
        assert!(matches!(
            DkgMessage::decode_exact(&bad_tag),
            Err(CodecError::InvalidTag(9))
        ));
        // Truncation.
        assert!(matches!(
            DkgMessage::decode_exact(&enc[..enc.len() - 1]),
            Err(CodecError::UnexpectedEnd)
        ));
    }

    #[test]
    fn serde_roundtrip() {
        let (_, sharing) = sharing(4, 2);
        let msg = DkgMessage::ComplaintAnswers {
            answers: vec![(3, vec![sharing.share_for(3)])],
        };
        let enc = serde_json::to_string(&msg).unwrap();
        let dec: DkgMessage = serde_json::from_str(&enc).unwrap();
        match dec {
            DkgMessage::ComplaintAnswers { answers } => {
                assert_eq!(answers.len(), 1);
                assert_eq!(answers[0].0, 3);
                assert_eq!(answers[0].1[0], sharing.share_for(3));
            }
            _ => panic!("wrong variant"),
        }
    }
}
