//! The per-player state machine of the paper's `Dist-Keygen` (§3.1).
//!
//! Round structure (optimistic case = one *active* round, matching the
//! paper's "single communication round in the absence of faulty players"):
//!
//! | round | broadcast                    | private            |
//! |-------|------------------------------|--------------------|
//! | 0     | Pedersen commitments `Ŵ_{ikℓ}` (+ App. G witness) | shares `(A_k(j), B_k(j))` |
//! | 1     | complaints (only if any)     | —                  |
//! | 2     | complaint answers (only if accused) | —           |
//! | 3     | — (finalize locally)         | —                  |
//!
//! Disqualification follows the paper exactly: more than `t` complaints,
//! an unanswered or incorrectly answered complaint, a malformed or
//! equivocated broadcast, an invalid Appendix-G witness, or (in refresh
//! mode) a sharing whose constant commitment is not the identity.
//!
//! The player is *decode-validate-then-process*: its inbox carries the
//! per-frame result of the strict [`borndist_net::Wire`] decode. A
//! broadcast frame that failed to decode is public misbehavior — every
//! honest receiver sees the same bytes fail the same strict decoder —
//! and globally disqualifies the sender; a malformed *private* frame is
//! indistinguishable from a withheld share and flows into the ordinary
//! complaint machinery. Malformed traffic can therefore never panic a
//! player or split honest verdicts.
//!
//! Byzantine behaviors for testing are injected through [`Behavior`]
//! hooks rather than separate state machines, so every adversary shares
//! the honest message plumbing.

use crate::messages::{AggregateWitness, DkgMessage};
use borndist_net::{Delivered, Outgoing, PlayerId, Protocol, Recipient, RoundAction};
use borndist_pairing::{msm, multi_pairing, Fr, G1Affine, G1Projective, G2Affine};
use borndist_parallel::par_map;
use borndist_shamir::{
    pedersen_check_verdicts, PedersenBases, PedersenCheck, PedersenCommitment, PedersenShare,
    PedersenSharing, ThresholdParams,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Below this many dealers the per-dealer checks run inline: the
/// simulator drives all `n` players in one process, so spawning threads
/// for a handful of sub-millisecond verifications costs more than it
/// buys — the DKG analogue of the minimum-work guards in the pairing
/// crate (`PAR_MIN_POINTS`, `MIN_PAIRS_PER_SHARD`).
const PAR_MIN_DEALERS: usize = 8;

/// [`par_map`] with the [`PAR_MIN_DEALERS`] small-input guard.
fn par_map_dealers<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    if items.len() < PAR_MIN_DEALERS {
        items.iter().map(f).collect()
    } else {
        par_map(items, f)
    }
}

/// Whether a run deals fresh random secrets or a proactive refresh
/// (zero secrets, §3.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SharingMode {
    /// Fresh key generation: random `(a_{ik0}, b_{ik0})`.
    Fresh,
    /// Proactive refresh: all constant terms are zero and every player
    /// checks `Ŵ_{ik0} = 1`.
    Refresh,
}

/// How a player executes its per-dealer share-bundle checks.
///
/// Both strategies implement the **same** accept/reject semantics — the
/// batched path bisects a failing batch down to plain per-share leaves,
/// so a forged share among hundreds of honest dealers gets the same
/// verdict either way (up to the negligible `|checks|/r` weight-collision
/// probability of small-exponent batching). Complaint traffic, qualified
/// sets and outputs are therefore identical under both strategies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CheckStrategy {
    /// Fold all structurally valid bundles of a round into **one**
    /// randomized cross-dealer multi-scalar multiplication
    /// ([`borndist_shamir::pedersen_check_verdicts`]). The committee-scale
    /// default: `O(n·t)` points in one Pippenger call instead of `n`
    /// small MSMs.
    #[default]
    BatchedMsm,
    /// One Pedersen evaluation per `(dealer, sharing)` — the literal
    /// §3.1 check, kept as the reference path and the baseline leg of
    /// the `dkg_scaling` release gate.
    PerDealer,
}

/// Extra parameters of the Appendix G aggregate-capable variant:
/// public `(g, h) ∈ G²` on which each dealer proves a one-time LHSPS.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AggregateBases {
    /// Generator `g`.
    pub g: G1Affine,
    /// Generator `h`.
    pub h: G1Affine,
}

/// Static configuration shared by all players of one DKG run.
#[derive(Clone, Debug)]
pub struct DkgConfig {
    /// Threshold parameters; the protocol requires `n ≥ 2t + 1`.
    pub params: ThresholdParams,
    /// The two commitment generators `(ĝ_z, ĝ_r)`.
    pub bases: PedersenBases,
    /// Number of parallel pair-sharings (`2` for the §3 scheme, `1` for
    /// §4, `3` for Appendix F).
    pub width: usize,
    /// Fresh keygen or proactive refresh.
    pub mode: SharingMode,
    /// Enables the Appendix G witness broadcast (requires `width == 2`).
    pub aggregate: Option<AggregateBases>,
    /// How per-dealer share checks are executed (verdict-identical
    /// strategies; see [`CheckStrategy`]).
    pub checks: CheckStrategy,
}

/// One bundle judgment: the dealer's broadcast commitments, the share
/// bundle under test (`None` = withheld/malformed), and the index every
/// share in it must open the commitments at.
type BundleCheck<'a> = (
    &'a [PedersenCommitment],
    Option<&'a [PedersenShare]>,
    PlayerId,
);

/// Judges one share bundle per entry. Structural validity (bundle
/// present, full width, shares addressed to the expected index) is
/// decided outside the algebra; the algebraic checks then run per the
/// configured [`CheckStrategy`]. The weights of the batched path come
/// from `check_seed` — a stream separate from the dealing RNG, so the
/// strategy choice never perturbs dealt messages or golden traffic.
fn judge_bundles(cfg: &DkgConfig, check_seed: u64, items: &[BundleCheck<'_>]) -> Vec<bool> {
    let mut verdicts: Vec<bool> = items
        .iter()
        .map(|(coms, bundle, idx)| {
            bundle.is_some_and(|b| {
                b.len() == cfg.width && coms.len() == cfg.width && b.iter().all(|s| s.index == *idx)
            })
        })
        .collect();
    match cfg.checks {
        CheckStrategy::PerDealer => {
            let idx: Vec<usize> = (0..items.len()).collect();
            par_map_dealers(&idx, |&j| {
                verdicts[j]
                    && items[j]
                        .1
                        .expect("structurally valid bundle is present")
                        .iter()
                        .zip(items[j].0.iter())
                        .all(|(s, c)| c.verify_share(&cfg.bases, s))
            })
        }
        CheckStrategy::BatchedMsm => {
            let mut checks: Vec<PedersenCheck<'_>> = Vec::new();
            let mut owner: Vec<usize> = Vec::new();
            for (j, ((coms, bundle, _), ok)) in items.iter().zip(verdicts.iter()).enumerate() {
                if !*ok {
                    continue;
                }
                for (s, c) in bundle
                    .expect("structurally valid bundle is present")
                    .iter()
                    .zip(coms.iter())
                {
                    checks.push(PedersenCheck {
                        commitment: c,
                        share: *s,
                    });
                    owner.push(j);
                }
            }
            let mut rng = StdRng::seed_from_u64(check_seed);
            let leaves = pedersen_check_verdicts(&cfg.bases, &checks, &mut rng);
            for (o, v) in owner.iter().zip(leaves) {
                if !v {
                    verdicts[*o] = false;
                }
            }
            verdicts
        }
    }
}

/// Fault-injection hooks. `Behavior::default()` is fully honest.
#[derive(Clone, Debug, Default)]
pub struct Behavior {
    /// Send corrupted share values to these recipients.
    pub corrupt_shares_to: BTreeSet<PlayerId>,
    /// Send no share at all to these recipients.
    pub withhold_shares_from: BTreeSet<PlayerId>,
    /// Complain against these dealers regardless of their honesty.
    pub false_complaints: Vec<PlayerId>,
    /// Never answer complaints.
    pub refuse_answers: bool,
    /// Fall silent from this round on (crash fault). `Some(0)` means the
    /// player never even deals; `Some(1)` deals and then disappears.
    pub crash_at_round: Option<usize>,
    /// Broadcast the wrong number of parallel sharings.
    pub bad_commitment_width: bool,
    /// Broadcast an invalid Appendix G witness.
    pub bad_aggregate_witness: bool,
    /// In refresh mode, deal a non-zero secret (must be caught).
    pub nonzero_refresh: bool,
    /// Broadcast two conflicting commitment messages (equivocation).
    pub equivocate_commitments: bool,
}

impl Behavior {
    /// `true` if every hook is inactive.
    pub fn is_honest(&self) -> bool {
        self.corrupt_shares_to.is_empty()
            && self.withhold_shares_from.is_empty()
            && self.false_complaints.is_empty()
            && !self.refuse_answers
            && self.crash_at_round.is_none()
            && !self.bad_commitment_width
            && !self.bad_aggregate_witness
            && !self.nonzero_refresh
            && !self.equivocate_commitments
    }
}

/// Why a player ended without a key share.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DkgAbort {
    /// The player was configured to crash.
    Crashed,
    /// Fewer than `t + 1` dealers survived (cannot happen with an honest
    /// majority, kept for defensive completeness).
    TooFewQualified {
        /// Number of surviving dealers.
        qualified: usize,
    },
    /// A qualified dealer never supplied this player a valid share —
    /// impossible for honest players, detectable for Byzantine ones.
    MissingShare {
        /// The dealer in question.
        dealer: PlayerId,
    },
}

impl core::fmt::Display for DkgAbort {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DkgAbort::Crashed => f.write_str("player crashed"),
            DkgAbort::TooFewQualified { qualified } => {
                write!(f, "only {} qualified dealers", qualified)
            }
            DkgAbort::MissingShare { dealer } => {
                write!(f, "no valid share from qualified dealer {}", dealer)
            }
        }
    }
}
impl std::error::Error for DkgAbort {}

/// A player's result: its secret share of the jointly generated key plus
/// everything needed to compute the public key and verification keys.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DkgOutput {
    /// This player's id.
    pub id: PlayerId,
    /// The surviving dealer set `Q`.
    pub qualified: BTreeSet<PlayerId>,
    /// Secret share: `(A_k(i), B_k(i))` for each parallel sharing `k` —
    /// `2·width` scalars total, independent of `n` (the "short shares"
    /// property, experiment E4).
    pub share: Vec<(Fr, Fr)>,
    /// Coefficient-wise products `Π_{j∈Q} Ŵ_{jk·}` — commitments to the
    /// joint polynomials, from which the public key (`constant`) and all
    /// verification keys (`evaluate_at_index`) derive.
    pub combined_commitments: Vec<PedersenCommitment>,
    /// Combined Appendix G witness `(Z, R) = (Π Z_{j0}, Π R_{j0})`.
    pub aggregate_witness: Option<AggregateWitness>,
    /// This player's own additive contribution `(a_{ik0}, b_{ik0})` —
    /// retained deliberately: the model is erasure-free, so corruption
    /// reveals it, and the security proof tolerates that.
    pub additive_secret: Vec<(Fr, Fr)>,
}

impl DkgOutput {
    /// The public key coordinates `ĝ_k = Π_{j∈Q} Ŵ_{jk0}`.
    pub fn public_key_coordinates(&self) -> Vec<G2Affine> {
        self.combined_commitments
            .iter()
            .map(|c| c.constant_commitment())
            .collect()
    }

    /// The verification key of player `i`:
    /// `V̂_{k,i} = Π_{j∈Q} Π_ℓ Ŵ_{jkℓ}^{i^ℓ}`, or identities for
    /// disqualified players (the paper's convention).
    pub fn verification_key(&self, i: PlayerId) -> Vec<G2Affine> {
        if !self.qualified.contains(&i) {
            return vec![G2Affine::identity(); self.combined_commitments.len()];
        }
        self.combined_commitments
            .iter()
            .map(|c| c.evaluate_at_index(i).to_affine())
            .collect()
    }
}

enum Phase {
    Dealing,
    Complaining,
    Answering,
    Finalizing,
    Done,
}

/// One DKG participant (honest or hook-modified).
pub struct DkgPlayer {
    id: PlayerId,
    cfg: DkgConfig,
    behavior: Behavior,
    rng: StdRng,
    phase: Phase,
    my_sharings: Vec<PedersenSharing>,
    commitments: BTreeMap<PlayerId, Vec<PedersenCommitment>>,
    witnesses: BTreeMap<PlayerId, AggregateWitness>,
    globally_bad: BTreeSet<PlayerId>,
    shares_from: BTreeMap<PlayerId, Vec<PedersenShare>>,
    complaints: BTreeMap<PlayerId, BTreeSet<PlayerId>>,
    answered: BTreeMap<(PlayerId, PlayerId), Vec<PedersenShare>>,
    /// Seed of the batch-weight RNG stream — distinct from `rng` so the
    /// check strategy never consumes dealing randomness. (Deterministic
    /// seeding is a simulation affordance; a deployment would draw the
    /// batch weights from fresh entropy.)
    check_seed: u64,
    /// Calls into [`judge_bundles`] so far; salts `check_seed` per call.
    check_calls: u64,
    /// Round-1 verdicts on our own private bundles, per dealer. For any
    /// dealer still qualified at finalize time the inputs (broadcast
    /// commitments, private bundle) are immutable after round 1, so
    /// finalize reuses these instead of re-verifying.
    private_verdicts: BTreeMap<PlayerId, bool>,
}

impl DkgPlayer {
    /// Creates a player with the given behavior and RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2t + 1` (the paper's honest-majority requirement,
    /// §3.1: "integers t, n ∈ N such that n ≥ 2t + 1") or if the
    /// Appendix G extension is combined with a width other than 2.
    pub fn new(id: PlayerId, cfg: DkgConfig, behavior: Behavior, seed: u64) -> Self {
        assert!(
            cfg.params.honest_majority(),
            "Dist-Keygen requires n >= 2t + 1 (got t={}, n={})",
            cfg.params.t,
            cfg.params.n
        );
        assert!(
            cfg.aggregate.is_none() || cfg.width == 2,
            "the Appendix G extension requires width 2"
        );
        DkgPlayer {
            id,
            rng: StdRng::seed_from_u64(seed ^ ((id as u64) << 32)),
            cfg,
            behavior,
            phase: Phase::Dealing,
            my_sharings: Vec::new(),
            commitments: BTreeMap::new(),
            witnesses: BTreeMap::new(),
            globally_bad: BTreeSet::new(),
            shares_from: BTreeMap::new(),
            complaints: BTreeMap::new(),
            answered: BTreeMap::new(),
            check_seed: seed ^ ((id as u64) << 32) ^ 0xb47c_5eed_0c8e_c25a,
            check_calls: 0,
            private_verdicts: BTreeMap::new(),
        }
    }

    /// Fresh per-call seed for the batch-weight RNG.
    fn next_check_seed(&mut self) -> u64 {
        let nonce = self.check_calls;
        self.check_calls += 1;
        self.check_seed ^ nonce.wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }

    fn n(&self) -> usize {
        self.cfg.params.n
    }

    fn t(&self) -> usize {
        self.cfg.params.t
    }

    fn crashed(&self, round: usize) -> bool {
        self.behavior.crash_at_round.is_some_and(|r| round >= r)
    }

    /// Builds the Appendix G witness for this dealer's sharings.
    fn aggregate_witness(&mut self) -> Option<AggregateWitness> {
        let bases = self.cfg.aggregate?;
        if self.behavior.bad_aggregate_witness {
            return Some(AggregateWitness {
                z0: G1Projective::random(&mut self.rng).to_affine(),
                r0: G1Projective::random(&mut self.rng).to_affine(),
            });
        }
        let (a1, b1) = self.my_sharings[0].secret_pair();
        let (a2, b2) = self.my_sharings[1].secret_pair();
        // Z = g^{-a1} h^{-a2}, R = g^{-b1} h^{-b2}.
        let g = bases.g;
        let h = bases.h;
        Some(AggregateWitness {
            z0: msm(&[g, h], &[-a1, -a2]).to_affine(),
            r0: msm(&[g, h], &[-b1, -b2]).to_affine(),
        })
    }

    /// Paper's sanity check on a dealer's witness:
    /// `e(Z,ĝ_z)·e(R,ĝ_r)·e(g,Ŵ_{10})·e(h,Ŵ_{20}) = 1`.
    fn witness_valid(
        cfg: &DkgConfig,
        witness: &AggregateWitness,
        commitments: &[PedersenCommitment],
    ) -> bool {
        let Some(bases) = cfg.aggregate else {
            return true;
        };
        let w10 = commitments[0].constant_commitment();
        let w20 = commitments[1].constant_commitment();
        multi_pairing(&[
            (&witness.z0, &cfg.bases.g_z),
            (&witness.r0, &cfg.bases.g_r),
            (&bases.g, &w10),
            (&bases.h, &w20),
        ])
        .is_identity()
    }

    /// Validates a dealer's round-0 broadcast; returns `false` if the
    /// dealer must be globally disqualified.
    fn broadcast_valid(
        &self,
        commitments: &[PedersenCommitment],
        witness: &Option<AggregateWitness>,
    ) -> bool {
        if commitments.len() != self.cfg.width {
            return false;
        }
        if commitments.iter().any(|c| c.len() != self.t() + 1) {
            return false;
        }
        if self.cfg.mode == SharingMode::Refresh && commitments.iter().any(|c| !c.is_zero_sharing())
        {
            return false;
        }
        if self.cfg.aggregate.is_some() {
            match witness {
                None => return false,
                Some(w) => {
                    if !Self::witness_valid(&self.cfg, w, commitments) {
                        return false;
                    }
                }
            }
        }
        true
    }

    // --- round bodies ---

    fn deal(&mut self) -> Vec<Outgoing<DkgMessage>> {
        for _ in 0..self.cfg.width {
            let sharing = match self.cfg.mode {
                SharingMode::Fresh => {
                    PedersenSharing::deal_random(&self.cfg.bases, self.t(), &mut self.rng)
                }
                SharingMode::Refresh => {
                    if self.behavior.nonzero_refresh {
                        PedersenSharing::deal_random(&self.cfg.bases, self.t(), &mut self.rng)
                    } else {
                        PedersenSharing::deal_zero(&self.cfg.bases, self.t(), &mut self.rng)
                    }
                }
            };
            self.my_sharings.push(sharing);
        }
        let mut commitments: Vec<PedersenCommitment> = self
            .my_sharings
            .iter()
            .map(|s| s.commitment.clone())
            .collect();
        if self.behavior.bad_commitment_width {
            commitments.pop();
        }
        let aggregate = self.aggregate_witness();
        let mut out = vec![Outgoing {
            to: Recipient::Broadcast,
            msg: DkgMessage::Commitments {
                commitments: commitments.clone(),
                aggregate,
            },
        }];
        if self.behavior.equivocate_commitments {
            // A second, conflicting broadcast: honest receivers must
            // treat this dealer as globally disqualified.
            let other = PedersenSharing::deal_random(&self.cfg.bases, self.t(), &mut self.rng);
            let mut conflicting = commitments;
            conflicting[0] = other.commitment;
            out.push(Outgoing {
                to: Recipient::Broadcast,
                msg: DkgMessage::Commitments {
                    commitments: conflicting,
                    aggregate,
                },
            });
        }
        for j in 1..=self.n() as PlayerId {
            if self.behavior.withhold_shares_from.contains(&j) {
                continue;
            }
            let mut shares: Vec<PedersenShare> =
                self.my_sharings.iter().map(|s| s.share_for(j)).collect();
            if self.behavior.corrupt_shares_to.contains(&j) {
                for s in shares.iter_mut() {
                    s.a += Fr::one();
                }
            }
            if j == self.id {
                // Deliver to self locally.
                self.shares_from.insert(self.id, shares);
            } else {
                out.push(Outgoing {
                    to: Recipient::Private(j),
                    msg: DkgMessage::Shares { shares },
                });
            }
        }
        out
    }

    /// A broadcast frame that fails the strict decode globally
    /// disqualifies its sender: the broadcast channel is reliable, so
    /// every honest player sees the identical malformed bytes and
    /// reaches the identical verdict. Returns `true` if the frame was
    /// consumed (so round handlers skip it).
    fn note_malformed(&mut self, d: &Delivered<DkgMessage>) -> bool {
        match &d.msg {
            Ok(_) => false,
            Err(_) => {
                if d.broadcast {
                    self.commitments.remove(&d.from);
                    self.globally_bad.insert(d.from);
                }
                // A malformed private frame is equivalent to a missing
                // one; the complaint path covers it.
                true
            }
        }
    }

    fn absorb_round0(&mut self, inbox: &[Delivered<DkgMessage>]) {
        for d in inbox {
            if self.note_malformed(d) {
                continue;
            }
            match d.msg.as_ref().expect("malformed frames filtered above") {
                DkgMessage::Commitments {
                    commitments,
                    aggregate,
                } if d.broadcast => {
                    if self.commitments.contains_key(&d.from) || self.globally_bad.contains(&d.from)
                    {
                        // Equivocation on the broadcast channel.
                        self.commitments.remove(&d.from);
                        self.globally_bad.insert(d.from);
                        continue;
                    }
                    if self.broadcast_valid(commitments, aggregate) {
                        self.commitments.insert(d.from, commitments.clone());
                        if let Some(w) = aggregate {
                            self.witnesses.insert(d.from, *w);
                        }
                    } else {
                        self.globally_bad.insert(d.from);
                    }
                }
                DkgMessage::Shares { shares } if !d.broadcast => {
                    self.shares_from
                        .entry(d.from)
                        .or_insert_with(|| shares.clone());
                }
                _ => { /* out-of-round or malformed: ignore */ }
            }
        }
    }

    fn decide_complaints(&mut self) -> Vec<PlayerId> {
        let mut against: BTreeSet<PlayerId> =
            self.behavior.false_complaints.iter().copied().collect();
        // Dealers that never broadcast: everyone sees this, treated as
        // bad (publicly disqualified, no complaint needed).
        let missing: Vec<PlayerId> = (1..=self.n() as PlayerId)
            .filter(|d| !self.globally_bad.contains(d) && !self.commitments.contains_key(d))
            .collect();
        self.globally_bad.extend(missing);
        // Share verification across all dealers at once — one randomized
        // cross-dealer MSM under `CheckStrategy::BatchedMsm`, per-dealer
        // pure work fanned across threads under `PerDealer`.
        let dealers: Vec<PlayerId> = (1..=self.n() as PlayerId)
            .filter(|d| !self.globally_bad.contains(d))
            .collect();
        let check_seed = self.next_check_seed();
        let items: Vec<BundleCheck<'_>> = dealers
            .iter()
            .map(|d| {
                (
                    self.commitments[d].as_slice(),
                    self.shares_from.get(d).map(|v| v.as_slice()),
                    self.id,
                )
            })
            .collect();
        let verdicts = judge_bundles(&self.cfg, check_seed, &items);
        for (dealer, ok) in dealers.iter().zip(verdicts) {
            self.private_verdicts.insert(*dealer, ok);
            if !ok {
                against.insert(*dealer);
            }
        }
        against.into_iter().collect()
    }

    fn absorb_complaints(&mut self, inbox: &[Delivered<DkgMessage>]) {
        for d in inbox {
            if self.note_malformed(d) {
                continue;
            }
            if let Ok(DkgMessage::Complaints { against }) = &d.msg {
                if !d.broadcast {
                    continue;
                }
                for accused in against {
                    self.complaints.entry(*accused).or_default().insert(d.from);
                }
            }
        }
    }

    fn answer_complaints(&mut self) -> Vec<Outgoing<DkgMessage>> {
        if self.behavior.refuse_answers {
            return vec![];
        }
        let Some(complainers) = self.complaints.get(&self.id) else {
            return vec![];
        };
        let answers: Vec<(u32, Vec<PedersenShare>)> = complainers
            .iter()
            .map(|c| {
                (
                    *c,
                    self.my_sharings.iter().map(|s| s.share_for(*c)).collect(),
                )
            })
            .collect();
        vec![Outgoing {
            to: Recipient::Broadcast,
            msg: DkgMessage::ComplaintAnswers { answers },
        }]
    }

    fn absorb_answers(&mut self, inbox: &[Delivered<DkgMessage>]) {
        for d in inbox {
            if self.note_malformed(d) {
                continue;
            }
            if let Ok(DkgMessage::ComplaintAnswers { answers }) = &d.msg {
                if !d.broadcast {
                    continue;
                }
                for (complainer, shares) in answers {
                    self.answered
                        .entry((d.from, *complainer))
                        .or_insert_with(|| shares.clone());
                }
            }
        }
    }

    fn finalize(&mut self) -> Result<DkgOutput, DkgAbort> {
        // Determine the qualified set Q from broadcast-only information,
        // so every honest player derives the same set. The public
        // pre-filter (globally bad, missing broadcast, more than `t`
        // complaints) costs no algebra; the surviving complaint-answer
        // share checks are a pure function of the broadcast record and
        // fold into one cross-dealer batch under
        // `CheckStrategy::BatchedMsm` — zero MSMs in a complaint-free
        // run.
        let no_complaints = BTreeSet::new();
        let survivors: Vec<PlayerId> = (1..=self.n() as PlayerId)
            .filter(|dealer| {
                !self.globally_bad.contains(dealer)
                    && self.commitments.contains_key(dealer)
                    && self.complaints.get(dealer).unwrap_or(&no_complaints).len() <= self.t()
            })
            .collect();
        let check_seed = self.next_check_seed();
        let mut items: Vec<BundleCheck<'_>> = Vec::new();
        let mut owner: Vec<usize> = Vec::new();
        for (pos, dealer) in survivors.iter().enumerate() {
            for c in self.complaints.get(dealer).unwrap_or(&no_complaints) {
                items.push((
                    self.commitments[dealer].as_slice(),
                    self.answered.get(&(*dealer, *c)).map(|v| v.as_slice()),
                    *c,
                ));
                owner.push(pos);
            }
        }
        let answer_ok = judge_bundles(&self.cfg, check_seed, &items);
        let mut keep = vec![true; survivors.len()];
        for (pos, ok) in owner.iter().zip(answer_ok) {
            if !ok {
                keep[*pos] = false;
            }
        }
        let qualified: BTreeSet<PlayerId> = survivors
            .iter()
            .zip(keep.iter())
            .filter(|(_, keep)| **keep)
            .map(|(d, _)| *d)
            .collect();

        if qualified.len() < self.t() + 1 {
            return Err(DkgAbort::TooFewQualified {
                qualified: qualified.len(),
            });
        }

        // Per-sharing secret share: sum of dealer shares, preferring the
        // publicly answered share when we complained. The verdict on our
        // own private bundle was computed (and cached) in the complaint
        // round over exactly these inputs — qualified dealers' bundles
        // are immutable after round 1 — so no second verification pass
        // is paid here.
        let q_list: Vec<PlayerId> = qualified.iter().copied().collect();
        let mut share = vec![(Fr::zero(), Fr::zero()); self.cfg.width];
        for dealer in q_list.iter() {
            let use_private = self.private_verdicts.get(dealer).copied().unwrap_or(false);
            let bundle: &Vec<PedersenShare> = if use_private {
                &self.shares_from[dealer]
            } else if let Some(ans) = self.answered.get(&(*dealer, self.id)) {
                ans
            } else {
                return Err(DkgAbort::MissingShare { dealer: *dealer });
            };
            for (k, s) in bundle.iter().enumerate() {
                share[k].0 += s.a;
                share[k].1 += s.b;
            }
        }

        // Combined commitments (joint polynomials).
        let mut combined: Option<Vec<PedersenCommitment>> = None;
        for dealer in &qualified {
            let coms = &self.commitments[dealer];
            combined = Some(match combined {
                None => coms.clone(),
                Some(acc) => acc
                    .iter()
                    .zip(coms.iter())
                    .map(|(a, b)| a.combine(b))
                    .collect(),
            });
        }

        let aggregate_witness = self.cfg.aggregate.map(|_| {
            let mut z = G1Projective::identity();
            let mut r = G1Projective::identity();
            for dealer in &qualified {
                let w = &self.witnesses[dealer];
                z = z.add_affine(&w.z0);
                r = r.add_affine(&w.r0);
            }
            AggregateWitness {
                z0: z.to_affine(),
                r0: r.to_affine(),
            }
        });

        Ok(DkgOutput {
            id: self.id,
            qualified,
            share,
            combined_commitments: combined.expect("Q is non-empty"),
            aggregate_witness,
            additive_secret: self.my_sharings.iter().map(|s| s.secret_pair()).collect(),
        })
    }
}

impl Protocol for DkgPlayer {
    type Message = DkgMessage;
    type Output = Result<DkgOutput, DkgAbort>;

    fn round(
        &mut self,
        round: usize,
        inbox: &[Delivered<DkgMessage>],
    ) -> RoundAction<DkgMessage, Self::Output> {
        if self.crashed(round) {
            // A crashed player stays silent and reports the crash at the
            // end so the simulation can terminate cleanly.
            return if round >= 3 {
                RoundAction::Finish(Err(DkgAbort::Crashed))
            } else {
                RoundAction::Continue(vec![])
            };
        }
        match self.phase {
            Phase::Dealing => {
                let out = self.deal();
                self.phase = Phase::Complaining;
                RoundAction::Continue(out)
            }
            Phase::Complaining => {
                self.absorb_round0(inbox);
                let against = self.decide_complaints();
                self.phase = Phase::Answering;
                if against.is_empty() {
                    RoundAction::Continue(vec![])
                } else {
                    RoundAction::Continue(vec![Outgoing {
                        to: Recipient::Broadcast,
                        msg: DkgMessage::Complaints { against },
                    }])
                }
            }
            Phase::Answering => {
                self.absorb_complaints(inbox);
                let out = self.answer_complaints();
                self.phase = Phase::Finalizing;
                RoundAction::Continue(out)
            }
            Phase::Finalizing => {
                self.absorb_answers(inbox);
                self.phase = Phase::Done;
                RoundAction::Finish(self.finalize())
            }
            Phase::Done => RoundAction::Finish(Err(DkgAbort::Crashed)),
        }
    }

    fn id(&self) -> PlayerId {
        self.id
    }
}

/// Per-player outcomes plus traffic metrics of one DKG (or refresh)
/// run: the result type of [`dkg_session`] and
/// [`crate::refresh::refresh_session`].
pub type SimulatedRunResult = Result<
    (
        BTreeMap<PlayerId, Result<DkgOutput, DkgAbort>>,
        borndist_net::Metrics,
    ),
    borndist_net::Error,
>;

/// Builds the boxed player set of one DKG run (honest players plus the
/// configured fault hooks), ready for any transport.
pub fn dkg_players(
    cfg: &DkgConfig,
    behaviors: &BTreeMap<PlayerId, Behavior>,
    seed: u64,
) -> Vec<borndist_net::BoxedPlayer<DkgMessage, Result<DkgOutput, DkgAbort>>> {
    (1..=cfg.params.n as PlayerId)
        .map(|id| {
            let behavior = behaviors.get(&id).cloned().unwrap_or_default();
            Box::new(DkgPlayer::new(id, cfg.clone(), behavior, seed)) as _
        })
        .collect()
}

/// Runs a full DKG session over any transport — the single driver
/// behind every network the runtime offers:
/// [`borndist_net::TransportKind::Lockstep`] for the paper's idealized
/// model, [`borndist_net::TransportKind::Channel`] with a lossy
/// [`borndist_net::DeliveryPolicy`] for unreliable-network scenarios,
/// and [`borndist_net::TransportKind::TcpLoopback`] for real sockets.
///
/// `behaviors` maps player ids to fault hooks; unlisted players are
/// honest. Returns per-player outputs plus network metrics. Byte
/// metrics are transport-independent for the same seed (the frames are
/// identical); the round budget is sized so that the complaint
/// machinery can absorb dropped share deliveries.
pub fn dkg_session(
    cfg: &DkgConfig,
    behaviors: &BTreeMap<PlayerId, Behavior>,
    seed: u64,
    transport: &borndist_net::TransportKind,
) -> SimulatedRunResult {
    let players = dkg_players(cfg, behaviors, seed);
    let (outputs, metrics) = borndist_net::run_protocol(transport, players, 8)?;
    Ok((outputs, metrics))
}

/// Derives the standard DKG generators and aggregate bases from a
/// protocol tag (random-oracle parameters, no trusted setup).
pub fn standard_config(
    params: ThresholdParams,
    width: usize,
    tag: &[u8],
    aggregate: bool,
) -> DkgConfig {
    let mut t = tag.to_vec();
    t.extend_from_slice(b"/dkg");
    let g_z = borndist_pairing::hash_to_g2(b"borndist/dkg/g_z", &t).to_affine();
    let g_r = borndist_pairing::hash_to_g2(b"borndist/dkg/g_r", &t).to_affine();
    let agg = aggregate.then(|| AggregateBases {
        g: borndist_pairing::hash_to_g1(b"borndist/dkg/agg_g", &t).to_affine(),
        h: borndist_pairing::hash_to_g1(b"borndist/dkg/agg_h", &t).to_affine(),
    });
    DkgConfig {
        params,
        bases: PedersenBases { g_z, g_r },
        width,
        mode: SharingMode::Fresh,
        aggregate: agg,
        checks: CheckStrategy::default(),
    }
}
