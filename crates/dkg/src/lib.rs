//! # borndist-dkg
//!
//! Pedersen distributed key generation **exactly as specified in §3.1 of
//! the paper**: each player verifiably shares `width` random pairs with
//! the two-generator Pedersen VSS, complaints and answers run over the
//! broadcast channel, dealers with more than `t` complaints or invalid
//! answers are disqualified, and the key material of the surviving set
//! `Q` is summed.
//!
//! The protocol is intentionally *not* biased-free (the adversary can
//! skew the public-key distribution, as Gennaro et al. showed); the whole
//! point of the paper is that the §3 signature scheme stays adaptively
//! secure anyway. What this crate guarantees is *agreement* (all honest
//! players derive the same `Q`, public key and verification keys) and
//! *share correctness* (every honest player's share opens the combined
//! commitment at its index).
//!
//! Also here:
//! * [`refresh`] — proactive zero-resharing (§3.3);
//! * [`recovery`] — Herzberg-style lost-share recovery (§3.3);
//! * the Appendix G witness broadcast for the aggregate-capable variant.
//!
//! ## Example
//!
//! ```rust
//! use borndist_dkg::{dkg_session, standard_config};
//! use borndist_net::TransportKind;
//! use borndist_shamir::ThresholdParams;
//! use std::collections::BTreeMap;
//!
//! let params = ThresholdParams::new(1, 4).unwrap();
//! let cfg = standard_config(params, 2, b"doc-example", false);
//! let (outputs, metrics) =
//!     dkg_session(&cfg, &BTreeMap::new(), 42, &TransportKind::Lockstep).unwrap();
//! assert!(outputs.values().all(|o| o.is_ok()));
//! // Honest run: the only active round is the dealing round.
//! assert_eq!(metrics.active_rounds, 1);
//! ```

mod messages;
pub mod player;
pub mod recovery;
pub mod refresh;

pub use messages::{AggregateWitness, DkgMessage};
pub use player::{
    dkg_players, dkg_session, standard_config, AggregateBases, Behavior, CheckStrategy, DkgAbort,
    DkgConfig, DkgOutput, DkgPlayer, SharingMode, SimulatedRunResult,
};
pub use recovery::{recover_share, Helper, RecoveryError, RecoveryMessage};
pub use refresh::{apply_refresh, apply_refresh_commitments, refresh_session, RefreshOutput};
