//! Share recovery for crashed or corrupted players (§3.3, following
//! Herzberg et al. [46, §4]).
//!
//! A player `r` that lost its share `(A(r), B(r))` is restored by any set
//! `S` of `t+1` helpers without revealing anything about the helpers' own
//! shares:
//!
//! 1. every helper `j ∈ S` samples masking polynomials `(D_j, E_j)` of
//!    degree `t` **vanishing at `r`** and privately sends
//!    `(D_j(i), E_j(i))` to each helper `i ∈ S`, committing publicly with
//!    the usual two-generator Pedersen vector so the vanishing property
//!    is verifiable (`Π Ŵ_ℓ^{r^ℓ} = 1`);
//! 2. helper `i` sends `u_i = (A(i) + Σ_j D_j(i), B(i) + Σ_j E_j(i))`
//!    to the recovering player;
//! 3. `r` interpolates the masked polynomial at `x = r`; the masks vanish
//!    there, yielding exactly `(A(r), B(r))`, which `r` validates against
//!    the public combined commitment.
//!
//! The implementation below runs the three steps in-process, but every
//! cross-player value travels as a [`RecoveryMessage`] **frame**: the
//! commitment broadcasts, mask sub-shares and masked points are encoded
//! with the canonical [`Wire`] codec and strictly decoded by their
//! receiver before any use (decode-validate-then-process, like the DKG
//! player). A helper whose bytes fail to decode is reported as
//! [`RecoveryError::Malformed`] — recovery picks a different helper set,
//! it never panics.

use borndist_net::{decode_frame, encode_frame, CodecError, PlayerId};
use borndist_pairing::codec::Wire;
use borndist_pairing::Fr;
use borndist_shamir::{
    interpolate_at, LagrangeError, PedersenBases, PedersenCommitment, PedersenShare,
    PedersenSharing, Polynomial,
};
use rand::RngCore;

/// A wire message of the recovery sub-protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoveryMessage {
    /// Step 1 broadcast: a helper's commitment to its masking pair.
    MaskCommitment {
        /// Pedersen commitment to `(D_j, E_j)`.
        commitment: PedersenCommitment,
    },
    /// Step 1 private message: a helper's mask sub-share for another
    /// helper, `(D_j(i), E_j(i))` packed as a Pedersen share at index `i`.
    MaskShare {
        /// The sub-share.
        share: PedersenShare,
    },
    /// Step 2 private message to the recovering player: one helper's
    /// masked evaluation `u_i`.
    MaskedPoint {
        /// `A(i) + Σ_j D_j(i)`.
        a: Fr,
        /// `B(i) + Σ_j E_j(i)`.
        b: Fr,
    },
}

const TAG_MASK_COMMITMENT: u8 = 0;
const TAG_MASK_SHARE: u8 = 1;
const TAG_MASKED_POINT: u8 = 2;

impl Wire for RecoveryMessage {
    fn encode_to(&self, out: &mut Vec<u8>) {
        match self {
            RecoveryMessage::MaskCommitment { commitment } => {
                out.push(TAG_MASK_COMMITMENT);
                commitment.encode_to(out);
            }
            RecoveryMessage::MaskShare { share } => {
                out.push(TAG_MASK_SHARE);
                share.encode_to(out);
            }
            RecoveryMessage::MaskedPoint { a, b } => {
                out.push(TAG_MASKED_POINT);
                a.encode_to(out);
                b.encode_to(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        match u8::decode(input)? {
            TAG_MASK_COMMITMENT => Ok(RecoveryMessage::MaskCommitment {
                commitment: PedersenCommitment::decode(input)?,
            }),
            TAG_MASK_SHARE => Ok(RecoveryMessage::MaskShare {
                share: PedersenShare::decode(input)?,
            }),
            TAG_MASKED_POINT => Ok(RecoveryMessage::MaskedPoint {
                a: Fr::decode(input)?,
                b: Fr::decode(input)?,
            }),
            tag => Err(CodecError::InvalidTag(tag)),
        }
    }
}

/// Errors of the recovery protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryError {
    /// Fewer than `t+1` helpers were supplied.
    NotEnoughHelpers {
        /// Helpers provided.
        have: usize,
        /// Helpers required.
        need: usize,
    },
    /// A helper's masking commitment does not vanish at the target index.
    MaskNotVanishing {
        /// The offending helper.
        helper: PlayerId,
    },
    /// A helper's frame failed the strict wire decode.
    Malformed {
        /// The offending helper.
        helper: PlayerId,
        /// The decode failure.
        error: CodecError,
    },
    /// The recovered share does not match the public commitment — some
    /// helper contributed garbage.
    CommitmentMismatch,
    /// Interpolation failure (duplicate or zero indices).
    BadIndices(LagrangeError),
}

impl core::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RecoveryError::NotEnoughHelpers { have, need } => {
                write!(f, "recovery needs {} helpers, got {}", need, have)
            }
            RecoveryError::MaskNotVanishing { helper } => {
                write!(f, "helper {}'s mask does not vanish at the target", helper)
            }
            RecoveryError::Malformed { helper, error } => {
                write!(f, "helper {}'s frame failed to decode: {}", helper, error)
            }
            RecoveryError::CommitmentMismatch => {
                f.write_str("recovered share fails the public commitment check")
            }
            RecoveryError::BadIndices(e) => write!(f, "bad helper indices: {}", e),
        }
    }
}
impl std::error::Error for RecoveryError {}

/// A helper's state: its index and its share of one pair-sharing.
#[derive(Clone, Copy, Debug)]
pub struct Helper {
    /// Helper id.
    pub id: PlayerId,
    /// The helper's own share `(A(id), B(id))` of the sharing being
    /// recovered.
    pub share: (Fr, Fr),
}

/// A helper's first-round state: its mask polynomials plus the broadcast
/// frame carrying the commitment.
struct MaskDeal {
    helper: PlayerId,
    sharing: PedersenSharing,
    commitment_frame: Vec<u8>,
}

/// Sends `msg` across the byte boundary as `helper`, strictly decoding
/// it on the receiving side.
fn over_the_wire(
    helper: PlayerId,
    msg: &RecoveryMessage,
) -> Result<RecoveryMessage, RecoveryError> {
    decode_wire(helper, &encode_frame(msg))
}

fn decode_wire(helper: PlayerId, frame: &[u8]) -> Result<RecoveryMessage, RecoveryError> {
    decode_frame(frame).map_err(|error| RecoveryError::Malformed { helper, error })
}

/// Recovers player `target`'s share `(A(target), B(target))` of a single
/// pair-sharing, verifying all intermediate material.
///
/// `combined` is the public combined Pedersen commitment of the sharing
/// (from [`crate::DkgOutput::combined_commitments`]); `t` the threshold.
///
/// # Errors
///
/// See [`RecoveryError`]. On success the returned share is guaranteed to
/// open `combined` at `target`.
pub fn recover_share<R: RngCore + ?Sized>(
    bases: &PedersenBases,
    combined: &PedersenCommitment,
    t: usize,
    helpers: &[Helper],
    target: PlayerId,
    rng: &mut R,
) -> Result<(Fr, Fr), RecoveryError> {
    if helpers.len() < t + 1 {
        return Err(RecoveryError::NotEnoughHelpers {
            have: helpers.len(),
            need: t + 1,
        });
    }
    let helpers = &helpers[..t + 1];
    let target_x = Fr::from_u64(target as u64);

    // Step 1: each helper deals masking polynomials vanishing at target,
    // broadcasting a Pedersen commitment frame.
    let deals: Vec<MaskDeal> = helpers
        .iter()
        .map(|h| {
            let d = Polynomial::random_vanishing_at(target_x, t, rng);
            let e = Polynomial::random_vanishing_at(target_x, t, rng);
            let sharing = PedersenSharing::from_polynomials(bases, d, e);
            let commitment_frame = encode_frame(&RecoveryMessage::MaskCommitment {
                commitment: sharing.commitment.clone(),
            });
            MaskDeal {
                helper: h.id,
                sharing,
                commitment_frame,
            }
        })
        .collect();

    // Everyone decodes the broadcast frames and checks the vanishing
    // property in the exponent: evaluating the mask commitment at
    // `target` must give the identity.
    for deal in &deals {
        let commitment = match decode_wire(deal.helper, &deal.commitment_frame)? {
            RecoveryMessage::MaskCommitment { commitment } => commitment,
            _ => unreachable!("MaskCommitment frames decode to MaskCommitment"),
        };
        if !commitment.evaluate_at_index(target).is_identity() {
            return Err(RecoveryError::MaskNotVanishing {
                helper: deal.helper,
            });
        }
        // And each helper verifies the sub-shares it received over its
        // private channel (equation (1) of the VSS); dealt honestly
        // here, asserted for completeness on the decoded bytes.
        for h in helpers.iter() {
            debug_assert!({
                let msg = over_the_wire(
                    deal.helper,
                    &RecoveryMessage::MaskShare {
                        share: deal.sharing.share_for(h.id),
                    },
                )
                .expect("honest mask sub-share frame decodes");
                match msg {
                    RecoveryMessage::MaskShare { share } => commitment.verify_share(bases, &share),
                    _ => false,
                }
            });
        }
    }

    // Step 2: helpers send masked points to the recovering player — one
    // MaskedPoint frame each, strictly decoded before interpolation.
    let mut masked_points: Vec<(u32, Fr)> = Vec::with_capacity(helpers.len());
    let mut masked_points_b: Vec<(u32, Fr)> = Vec::with_capacity(helpers.len());
    for h in helpers.iter() {
        let mask_a: Fr = deals
            .iter()
            .map(|d| d.sharing.poly_a.evaluate_at_index(h.id))
            .fold(Fr::zero(), |acc, v| acc + v);
        let mask_b: Fr = deals
            .iter()
            .map(|d| d.sharing.poly_b.evaluate_at_index(h.id))
            .fold(Fr::zero(), |acc, v| acc + v);
        let msg = over_the_wire(
            h.id,
            &RecoveryMessage::MaskedPoint {
                a: h.share.0 + mask_a,
                b: h.share.1 + mask_b,
            },
        )?;
        match msg {
            RecoveryMessage::MaskedPoint { a, b } => {
                masked_points.push((h.id, a));
                masked_points_b.push((h.id, b));
            }
            _ => unreachable!("MaskedPoint frames decode to MaskedPoint"),
        }
    }

    // Step 3: interpolate the masked polynomial at the target index; the
    // masks vanish there.
    let a = interpolate_at(&masked_points, target_x).map_err(RecoveryError::BadIndices)?;
    let b = interpolate_at(&masked_points_b, target_x).map_err(RecoveryError::BadIndices)?;

    // Validate against the public commitment before accepting.
    let candidate = PedersenShare {
        index: target,
        a,
        b,
    };
    if !combined.verify_share(bases, &candidate) {
        return Err(RecoveryError::CommitmentMismatch);
    }
    Ok((a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn recovery_messages_roundtrip() {
        let mut r = StdRng::seed_from_u64(0x4ec0);
        let bases = PedersenBases {
            g_z: borndist_pairing::G2Projective::random(&mut r).to_affine(),
            g_r: borndist_pairing::G2Projective::random(&mut r).to_affine(),
        };
        let sharing = PedersenSharing::deal_random(&bases, 2, &mut r);
        let msgs = [
            RecoveryMessage::MaskCommitment {
                commitment: sharing.commitment.clone(),
            },
            RecoveryMessage::MaskShare {
                share: sharing.share_for(3),
            },
            RecoveryMessage::MaskedPoint {
                a: Fr::random(&mut r),
                b: Fr::random(&mut r),
            },
        ];
        for msg in &msgs {
            let enc = msg.encode();
            assert_eq!(&RecoveryMessage::decode_exact(&enc).unwrap(), msg);
            // Strictness: a trailing byte is rejected.
            let mut bad = enc.clone();
            bad.push(0);
            assert!(RecoveryMessage::decode_exact(&bad).is_err());
        }
        assert_eq!(
            RecoveryMessage::decode_exact(&[9]),
            Err(CodecError::InvalidTag(9))
        );
    }

    #[test]
    fn tampered_recovery_frame_is_reported_not_panicked() {
        let helper = 4;
        let mut frame = encode_frame(&RecoveryMessage::MaskedPoint {
            a: Fr::one(),
            b: Fr::zero(),
        });
        frame.pop();
        match decode_wire(helper, &frame) {
            Err(RecoveryError::Malformed { helper: h, .. }) => assert_eq!(h, helper),
            other => panic!("expected Malformed, got {:?}", other),
        }
    }
}
