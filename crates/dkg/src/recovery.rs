//! Share recovery for crashed or corrupted players (§3.3, following
//! Herzberg et al. [46, §4]).
//!
//! A player `r` that lost its share `(A(r), B(r))` is restored by any set
//! `S` of `t+1` helpers without revealing anything about the helpers' own
//! shares:
//!
//! 1. every helper `j ∈ S` samples masking polynomials `(D_j, E_j)` of
//!    degree `t` **vanishing at `r`** and privately sends
//!    `(D_j(i), E_j(i))` to each helper `i ∈ S`, committing publicly with
//!    the usual two-generator Pedersen vector so the vanishing property
//!    is verifiable (`Π Ŵ_ℓ^{r^ℓ} = 1`);
//! 2. helper `i` sends `u_i = (A(i) + Σ_j D_j(i), B(i) + Σ_j E_j(i))`
//!    to the recovering player;
//! 3. `r` interpolates the masked polynomial at `x = r`; the masks vanish
//!    there, yielding exactly `(A(r), B(r))`, which `r` validates against
//!    the public combined commitment.
//!
//! The implementation below runs the three steps in-process (the message
//! pattern is two rounds of private channels; we account for it in the
//! caller's metrics if needed) and enforces both verifiability checks.

use borndist_net::PlayerId;
use borndist_pairing::Fr;
use borndist_shamir::{
    interpolate_at, LagrangeError, PedersenBases, PedersenCommitment, PedersenShare,
    PedersenSharing, Polynomial,
};
use rand::RngCore;

/// Errors of the recovery protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryError {
    /// Fewer than `t+1` helpers were supplied.
    NotEnoughHelpers {
        /// Helpers provided.
        have: usize,
        /// Helpers required.
        need: usize,
    },
    /// A helper's masking commitment does not vanish at the target index.
    MaskNotVanishing {
        /// The offending helper.
        helper: PlayerId,
    },
    /// The recovered share does not match the public commitment — some
    /// helper contributed garbage.
    CommitmentMismatch,
    /// Interpolation failure (duplicate or zero indices).
    BadIndices(LagrangeError),
}

impl core::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RecoveryError::NotEnoughHelpers { have, need } => {
                write!(f, "recovery needs {} helpers, got {}", need, have)
            }
            RecoveryError::MaskNotVanishing { helper } => {
                write!(f, "helper {}'s mask does not vanish at the target", helper)
            }
            RecoveryError::CommitmentMismatch => {
                f.write_str("recovered share fails the public commitment check")
            }
            RecoveryError::BadIndices(e) => write!(f, "bad helper indices: {}", e),
        }
    }
}
impl std::error::Error for RecoveryError {}

/// A helper's state: its index and its share of one pair-sharing.
#[derive(Clone, Copy, Debug)]
pub struct Helper {
    /// Helper id.
    pub id: PlayerId,
    /// The helper's own share `(A(id), B(id))` of the sharing being
    /// recovered.
    pub share: (Fr, Fr),
}

/// A helper's first-round broadcast: commitment to its masking pair.
struct MaskDeal {
    helper: PlayerId,
    sharing: PedersenSharing,
}

/// Recovers player `target`'s share `(A(target), B(target))` of a single
/// pair-sharing, verifying all intermediate material.
///
/// `combined` is the public combined Pedersen commitment of the sharing
/// (from [`crate::DkgOutput::combined_commitments`]); `t` the threshold.
///
/// # Errors
///
/// See [`RecoveryError`]. On success the returned share is guaranteed to
/// open `combined` at `target`.
pub fn recover_share<R: RngCore + ?Sized>(
    bases: &PedersenBases,
    combined: &PedersenCommitment,
    t: usize,
    helpers: &[Helper],
    target: PlayerId,
    rng: &mut R,
) -> Result<(Fr, Fr), RecoveryError> {
    if helpers.len() < t + 1 {
        return Err(RecoveryError::NotEnoughHelpers {
            have: helpers.len(),
            need: t + 1,
        });
    }
    let helpers = &helpers[..t + 1];
    let target_x = Fr::from_u64(target as u64);

    // Step 1: each helper deals masking polynomials vanishing at target,
    // with a public Pedersen commitment.
    let deals: Vec<MaskDeal> = helpers
        .iter()
        .map(|h| {
            let d = Polynomial::random_vanishing_at(target_x, t, rng);
            let e = Polynomial::random_vanishing_at(target_x, t, rng);
            MaskDeal {
                helper: h.id,
                sharing: PedersenSharing::from_polynomials(bases, d, e),
            }
        })
        .collect();

    // Everyone checks the vanishing property in the exponent:
    // evaluating the mask commitment at `target` must give the identity.
    for deal in &deals {
        if !deal
            .sharing
            .commitment
            .evaluate_at_index(target)
            .is_identity()
        {
            return Err(RecoveryError::MaskNotVanishing {
                helper: deal.helper,
            });
        }
        // And each helper verifies the sub-shares it received (equation
        // (1) of the VSS); dealt honestly here, asserted for completeness.
        for h in helpers.iter() {
            debug_assert!(deal
                .sharing
                .commitment
                .verify_share(bases, &deal.sharing.share_for(h.id)));
        }
    }

    // Step 2: helpers send masked share points to the recovering player.
    let masked_points: Vec<(u32, Fr)> = helpers
        .iter()
        .map(|h| {
            let mask_a: Fr = deals
                .iter()
                .map(|d| d.sharing.poly_a.evaluate_at_index(h.id))
                .fold(Fr::zero(), |acc, v| acc + v);
            (h.id, h.share.0 + mask_a)
        })
        .collect();
    let masked_points_b: Vec<(u32, Fr)> = helpers
        .iter()
        .map(|h| {
            let mask_b: Fr = deals
                .iter()
                .map(|d| d.sharing.poly_b.evaluate_at_index(h.id))
                .fold(Fr::zero(), |acc, v| acc + v);
            (h.id, h.share.1 + mask_b)
        })
        .collect();

    // Step 3: interpolate the masked polynomial at the target index; the
    // masks vanish there.
    let a = interpolate_at(&masked_points, target_x).map_err(RecoveryError::BadIndices)?;
    let b = interpolate_at(&masked_points_b, target_x).map_err(RecoveryError::BadIndices)?;

    // Validate against the public commitment before accepting.
    let candidate = PedersenShare {
        index: target,
        a,
        b,
    };
    if !combined.verify_share(bases, &candidate) {
        return Err(RecoveryError::CommitmentMismatch);
    }
    Ok((a, b))
}
