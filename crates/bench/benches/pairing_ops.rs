//! E10 — substrate microbenchmarks: the primitive costs every scheme
//! decomposes into (context for E2/E8).

use borndist_bench::bench_rng;
use borndist_pairing::{
    hash_to_g1, hash_to_g2, msm, mul_g1_generator, multi_pairing, multi_pairing_prepared,
    multi_pairing_tate, pairing, pairing_tate, FixedBaseTable, Fr, G1Affine, G1Projective,
    G2Affine, G2Prepared, G2Projective,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_pairing(c: &mut Criterion) {
    let mut rng = bench_rng();
    let p = G1Projective::random(&mut rng).to_affine();
    let q = G2Projective::random(&mut rng).to_affine();

    let mut g = c.benchmark_group("pairing");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    g.bench_function("single", |b| b.iter(|| pairing(&p, &q)));
    for k in [2usize, 4, 8] {
        let pairs: Vec<(G1Affine, G2Affine)> = (0..k)
            .map(|_| {
                (
                    G1Projective::random(&mut rng).to_affine(),
                    G2Projective::random(&mut rng).to_affine(),
                )
            })
            .collect();
        g.bench_function(format!("product_of_{}", k), |b| {
            b.iter(|| {
                let refs: Vec<(&G1Affine, &G2Affine)> = pairs.iter().map(|(x, y)| (x, y)).collect();
                multi_pairing(&refs)
            })
        });
    }
    g.finish();
}

fn bench_group_ops(c: &mut Criterion) {
    let mut rng = bench_rng();
    let s = Fr::random(&mut rng);

    let mut g = c.benchmark_group("group_ops");
    g.warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    g.bench_function("g1_scalar_mul", |b| {
        b.iter(|| G1Projective::generator() * s)
    });
    g.bench_function("g2_scalar_mul", |b| {
        b.iter(|| G2Projective::generator() * s)
    });
    g.bench_function("hash_to_g1", |b| {
        b.iter(|| hash_to_g1(b"bench", b"message"))
    });
    g.bench_function("hash_to_g2", |b| {
        b.iter(|| hash_to_g2(b"bench", b"message"))
    });
    // The signing inner loop: a 2-base multi-exponentiation.
    let bases: Vec<G1Affine> = (0..2)
        .map(|_| G1Projective::random(&mut rng).to_affine())
        .collect();
    let scalars: Vec<Fr> = (0..2).map(|_| Fr::random(&mut rng)).collect();
    g.bench_function("msm_2", |b| b.iter(|| msm(&bases, &scalars)));
    g.finish();
}

/// The scalar-multiplication ladder: schoolbook double-and-add (the
/// reference slow path) vs wNAF vs the GLV joint ladder (the default
/// behind `mul`) vs fixed-base tables.
fn bench_scalar_mul_paths(c: &mut Criterion) {
    let mut rng = bench_rng();
    let s = Fr::random(&mut rng);
    let base = G1Projective::random(&mut rng);
    let table = FixedBaseTable::new(&base);

    let mut g = c.benchmark_group("scalar_mul_paths");
    g.warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    g.bench_function("g1_schoolbook", |b| {
        b.iter(|| base.mul_schoolbook(&s.to_le_bits()))
    });
    g.bench_function("g1_wnaf", |b| {
        b.iter(|| base.mul_vartime_limbs(&s.to_le_bits()))
    });
    g.bench_function("g1_glv", |b| b.iter(|| base.mul(&s)));
    g.bench_function("g1_fixed_base_table", |b| b.iter(|| table.mul(&s)));
    g.bench_function("g1_generator_table", |b| b.iter(|| mul_g1_generator(&s)));
    // MSM regimes around the window table boundaries.
    for n in [4usize, 16, 128] {
        let bases: Vec<G1Affine> = (0..n)
            .map(|_| G1Projective::random(&mut rng).to_affine())
            .collect();
        let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
        g.bench_function(format!("msm_{}", n), |b| b.iter(|| msm(&bases, &scalars)));
    }
    g.finish();
}

/// The pairing-engine ladder: optimal ate (the default) vs the retained
/// Tate reference, single and 4-way product (the scheme's verification
/// equation shape).
fn bench_ate_vs_tate(c: &mut Criterion) {
    let mut rng = bench_rng();
    let p = G1Projective::random(&mut rng).to_affine();
    let q = G2Projective::random(&mut rng).to_affine();
    let pairs: Vec<(G1Affine, G2Affine)> = (0..4)
        .map(|_| {
            (
                G1Projective::random(&mut rng).to_affine(),
                G2Projective::random(&mut rng).to_affine(),
            )
        })
        .collect();
    let refs: Vec<(&G1Affine, &G2Affine)> = pairs.iter().map(|(x, y)| (x, y)).collect();

    let mut g = c.benchmark_group("ate_vs_tate");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    g.bench_function("ate_single", |b| b.iter(|| pairing(&p, &q)));
    g.bench_function("tate_single", |b| b.iter(|| pairing_tate(&p, &q)));
    g.bench_function("ate_product_of_4", |b| b.iter(|| multi_pairing(&refs)));
    g.bench_function("tate_product_of_4", |b| {
        b.iter(|| multi_pairing_tate(&refs))
    });
    g.finish();
}

/// Prepared (cached line coefficients) vs live second arguments, at the
/// 4-pairing verification shape and single-pairing granularity.
fn bench_prepared_vs_unprepared(c: &mut Criterion) {
    let mut rng = bench_rng();
    let pairs: Vec<(G1Affine, G2Affine)> = (0..4)
        .map(|_| {
            (
                G1Projective::random(&mut rng).to_affine(),
                G2Projective::random(&mut rng).to_affine(),
            )
        })
        .collect();
    let refs: Vec<(&G1Affine, &G2Affine)> = pairs.iter().map(|(x, y)| (x, y)).collect();
    let preps: Vec<G2Prepared> = pairs.iter().map(|(_, q)| G2Prepared::new(q)).collect();
    let prepared: Vec<(&G1Affine, &G2Prepared)> = pairs
        .iter()
        .zip(preps.iter())
        .map(|((x, _), t)| (x, t))
        .collect();

    let mut g = c.benchmark_group("prepared_vs_unprepared");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    g.bench_function("unprepared_product_of_4", |b| {
        b.iter(|| multi_pairing(&refs))
    });
    g.bench_function("prepared_product_of_4", |b| {
        b.iter(|| multi_pairing_prepared(&prepared))
    });
    g.bench_function("prepare_g2_build", |b| {
        b.iter(|| G2Prepared::new(&pairs[0].1))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_pairing,
    bench_group_ops,
    bench_scalar_mul_paths,
    bench_ate_vs_tate,
    bench_prepared_vs_unprepared
);
criterion_main!(benches);
