//! E3 — signing-path robustness under faults: the §3 scheme's
//! `combine_verified` (filter + one-shot combine, no extra round) against
//! the additive-reshare baseline's reconstruction round.
//!
//! `f` partial signatures are corrupted / `f` servers are absent.

use borndist_baselines::additive;
use borndist_bench::{bench_rng, ro_setup, MESSAGE};
use borndist_core::ro::PartialSignature;
use borndist_shamir::ThresholdParams;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

const T: usize = 3;
const N: usize = 8;

fn bench_faulty_signing(c: &mut Criterion) {
    let (scheme, km) = ro_setup(T, N);
    let mut rng = bench_rng();
    let params = ThresholdParams::new(T, N).unwrap();
    let akm = additive::keygen(params, &mut rng);

    let mut g = c.benchmark_group("e3_fault_tolerant_signing");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(5));

    for f in [0usize, 1, 3] {
        // §3: n partials arrive, f of them corrupted; the combiner
        // filters and combines — one logical round regardless of f.
        let mut partials: Vec<PartialSignature> = (1..=N as u32)
            .map(|i| scheme.share_sign(&km.shares[&i], MESSAGE))
            .collect();
        for p in partials.iter_mut().take(f) {
            p.sig.z = p.sig.r; // corrupt
        }
        g.bench_with_input(BenchmarkId::new("ro_combine_verified", f), &f, |b, _| {
            b.iter(|| {
                scheme
                    .combine_verified(&km.params, &km.verification_keys, MESSAGE, &partials)
                    .unwrap()
            })
        });

        // Additive baseline: f servers absent; every absence triggers an
        // exponent-interpolation reconstruction from t+1 backups.
        g.bench_with_input(BenchmarkId::new("additive_with_faults", f), &f, |b, _| {
            b.iter(|| {
                let alive: Vec<u32> = (1..=N as u32).filter(|i| *i > f as u32).collect();
                let mut contributions: Vec<additive::AddContribution> = alive
                    .iter()
                    .map(|i| additive::contribute(&akm.players[i], MESSAGE))
                    .collect();
                for missing in 1..=f as u32 {
                    let backups: Vec<additive::BackupContribution> = alive[..T + 1]
                        .iter()
                        .map(|j| {
                            additive::backup_contribute(&akm.players[j], missing, MESSAGE).unwrap()
                        })
                        .collect();
                    contributions.push(additive::reconstruct_missing(&params, &backups).unwrap());
                }
                additive::combine(&akm, &contributions).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_faulty_signing);
criterion_main!(benches);
