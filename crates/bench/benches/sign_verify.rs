//! E2 — the §3.1 cost claims: signing is "two multi-exponentiations with
//! two base elements and two hash-on-curve operations"; verification is
//! "a product of four pairings". Measured against the Boldyreva and plain
//! BLS baselines, plus the `core::batch` batched-verification fast path
//! (`k` signatures through one shared four-pairing product; the ≥ 3×
//! acceptance measurement lives in `examples/batch_throughput.rs` /
//! BENCH_batch_verify.json).

use borndist_baselines::{bls, boldyreva};
use borndist_bench::{bench_rng, ro_setup, MESSAGE};
use borndist_core::ro::Signature;
use borndist_shamir::ThresholdParams;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_ro_scheme(c: &mut Criterion) {
    let (scheme, km) = ro_setup(5, 16);
    let partial = scheme.share_sign(&km.shares[&1], MESSAGE);
    let partials: Vec<_> = (1..=6u32)
        .map(|i| scheme.share_sign(&km.shares[&i], MESSAGE))
        .collect();
    let sig = scheme.combine(&km.params, &partials).unwrap();

    let mut g = c.benchmark_group("e2_ro_scheme");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));
    g.bench_function("share_sign", |b| {
        b.iter(|| scheme.share_sign(&km.shares[&1], MESSAGE))
    });
    g.bench_function("share_verify", |b| {
        b.iter(|| scheme.share_verify(&km.verification_keys[&1], MESSAGE, &partial))
    });
    g.bench_function("combine_t5", |b| {
        b.iter(|| scheme.combine(&km.params, &partials))
    });
    g.bench_function("verify", |b| {
        b.iter(|| scheme.verify(&km.public_key, MESSAGE, &sig))
    });
    g.finish();
}

/// Batched verification vs the sequential slow path, for batch sizes
/// spanning the combiner (t+1 shares) and verifier (many signatures)
/// workloads.
fn bench_batch_verify(c: &mut Criterion) {
    let (scheme, km) = ro_setup(5, 16);
    let mut rng = bench_rng();
    let msgs: Vec<Vec<u8>> = (0..64)
        .map(|i| format!("batched message {}", i).into_bytes())
        .collect();
    let sigs: Vec<Signature> = msgs
        .iter()
        .map(|m| {
            let partials: Vec<_> = (1..=6u32)
                .map(|i| scheme.share_sign(&km.shares[&i], m))
                .collect();
            scheme.combine(&km.params, &partials).unwrap()
        })
        .collect();

    let mut g = c.benchmark_group("e2_batch_verify");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));
    for k in [16usize, 64] {
        let items: Vec<(&[u8], &Signature)> = msgs[..k]
            .iter()
            .zip(sigs[..k].iter())
            .map(|(m, s)| (m.as_slice(), s))
            .collect();
        g.bench_function(format!("batch_{}", k), |b| {
            b.iter(|| scheme.batch_verify(&km.public_key, &items, &mut rng))
        });
        g.bench_function(format!("sequential_{}", k), |b| {
            b.iter(|| {
                items
                    .iter()
                    .all(|(m, s)| scheme.verify(&km.public_key, m, s))
            })
        });
    }
    g.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let mut rng = bench_rng();
    let params = ThresholdParams::new(5, 16).unwrap();
    let km = boldyreva::dealer_keygen(params, &mut rng);
    let partial = boldyreva::share_sign(&km.shares[&1], MESSAGE);
    let partials: Vec<_> = (1..=6u32)
        .map(|i| boldyreva::share_sign(&km.shares[&i], MESSAGE))
        .collect();
    let sig = boldyreva::combine(&params, &partials).unwrap();
    let bls_kp = bls::BlsKeyPair::generate(&mut rng);
    let bls_sig = bls_kp.sign(MESSAGE);

    let mut g = c.benchmark_group("e2_baselines");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));
    g.bench_function("boldyreva_share_sign", |b| {
        b.iter(|| boldyreva::share_sign(&km.shares[&1], MESSAGE))
    });
    g.bench_function("boldyreva_share_verify", |b| {
        b.iter(|| boldyreva::share_verify(&km.verification_keys[&1], MESSAGE, &partial))
    });
    g.bench_function("boldyreva_verify", |b| {
        b.iter(|| boldyreva::verify(&km.public_key, MESSAGE, &sig))
    });
    g.bench_function("bls_sign", |b| b.iter(|| bls_kp.sign(MESSAGE)));
    g.bench_function("bls_verify", |b| {
        b.iter(|| bls::bls_verify(&bls_kp.pk, MESSAGE, &bls_sig))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_ro_scheme,
    bench_baselines,
    bench_batch_verify
);
criterion_main!(benches);
