//! Thread-count scaling of the multi-core execution layer: the same
//! MSM / batch-verification workloads at 1, 2, 4 and 8 threads (the
//! EXPERIMENTS.md scaling-curve companion to
//! `examples/parallel_throughput.rs`).

use borndist_bench::bench_rng;
use borndist_core::ro::{PartialSignature, Signature, ThresholdScheme};
use borndist_pairing::{msm, Fr, G1Affine, G1Projective};
use borndist_parallel::{with_parallelism, Parallelism};
use borndist_shamir::ThresholdParams;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn setting(t: usize) -> Parallelism {
    if t == 1 {
        Parallelism::Sequential
    } else {
        Parallelism::Threads(t)
    }
}

/// `scalar` group: MSM window accumulation across thread counts.
fn bench_parallel_msm(c: &mut Criterion) {
    let mut rng = bench_rng();
    let n = 512usize;
    let bases: Vec<G1Affine> = (0..n)
        .map(|_| G1Projective::random(&mut rng).to_affine())
        .collect();
    let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();

    let mut g = c.benchmark_group("parallel_msm");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for t in THREADS {
        g.bench_function(BenchmarkId::new("g1_512", t), |b| {
            b.iter(|| with_parallelism(setting(t), || msm(&bases, &scalars)))
        });
    }
    g.finish();
}

/// `batch` group: the sharded 32-signature batch verification across
/// thread counts (Miller shards + parallel hashing + parallel MSM).
fn bench_parallel_batch_verify(c: &mut Criterion) {
    let mut rng = bench_rng();
    let scheme = ThresholdScheme::new(b"bench-parallel-batch");
    let km = scheme.dealer_keygen(ThresholdParams::new(2, 6).unwrap(), &mut rng);
    let k = 32usize;
    let msgs: Vec<Vec<u8>> = (0..k).map(|i| format!("pb {}", i).into_bytes()).collect();
    let sigs: Vec<Signature> = msgs
        .iter()
        .map(|m| {
            let partials: Vec<PartialSignature> = (1..=3u32)
                .map(|i| scheme.share_sign(&km.shares[&i], m))
                .collect();
            scheme.combine(&km.params, &partials).unwrap()
        })
        .collect();
    let items: Vec<(&[u8], &Signature)> = msgs
        .iter()
        .zip(sigs.iter())
        .map(|(m, s)| (m.as_slice(), s))
        .collect();

    let mut g = c.benchmark_group("parallel_batch_verify");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    for t in THREADS {
        g.bench_function(BenchmarkId::new("ro_32", t), |b| {
            let mut r = StdRng::seed_from_u64(t as u64);
            b.iter(|| {
                with_parallelism(setting(t), || {
                    assert!(scheme.batch_verify(&km.public_key, &items, &mut r))
                })
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_parallel_msm, bench_parallel_batch_verify);
criterion_main!(benches);
