//! E7 — Appendix G aggregation: verifying one aggregate of `ℓ`
//! signatures vs `ℓ` individual verifications, and the aggregate's
//! constant size.

use borndist_bench::bench_rng;
use borndist_core::aggregate::{AggPublicKey, AggregateScheme};
use borndist_core::ro::PartialSignature;
use borndist_core::Signature;
use borndist_shamir::ThresholdParams;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn setup(l: usize) -> (AggregateScheme, Vec<(AggPublicKey, Vec<u8>, Signature)>) {
    let scheme = AggregateScheme::new(b"bench-agg");
    let params = ThresholdParams::new(1, 4).unwrap();
    let mut rng = bench_rng();
    let inputs = (0..l)
        .map(|i| {
            let (pk, km) = scheme.dealer_keygen(params, &mut rng);
            let msg = format!("certificate {}", i).into_bytes();
            let partials: Vec<PartialSignature> = (1..=2u32)
                .map(|j| scheme.share_sign(&pk, &km.shares[&j], &msg))
                .collect();
            let sig = scheme.combine(&params, &partials).unwrap();
            (pk, msg, sig)
        })
        .collect();
    (scheme, inputs)
}

fn bench_aggregate(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_aggregate");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(5));
    for l in [1usize, 2, 4, 8, 16] {
        let (scheme, inputs) = setup(l);
        let agg = scheme.aggregate(&inputs).unwrap();
        let statements: Vec<(AggPublicKey, Vec<u8>)> = inputs
            .iter()
            .map(|(pk, m, _)| (pk.clone(), m.clone()))
            .collect();
        g.bench_with_input(BenchmarkId::new("aggregate_verify", l), &l, |b, _| {
            b.iter(|| scheme.aggregate_verify(&statements, &agg))
        });
        // The core::batch fold: per-key sanity checks merged into the
        // product equation — one Miller loop and final exponentiation.
        let mut rng = bench_rng();
        g.bench_with_input(
            BenchmarkId::new("aggregate_verify_batched", l),
            &l,
            |b, _| b.iter(|| scheme.aggregate_verify_batched(&statements, &agg, &mut rng)),
        );
        g.bench_with_input(BenchmarkId::new("individual_verify", l), &l, |b, _| {
            b.iter(|| inputs.iter().all(|(pk, m, s)| scheme.verify(pk, m, s)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_aggregate);
criterion_main!(benches);
