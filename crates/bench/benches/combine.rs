//! E6 — `Combine` cost vs threshold `t`: Lagrange interpolation in the
//! exponent over `t+1` partial signatures (Pippenger MSM inside), and
//! the robust variants — per-share `Share-Verify` filtering vs the
//! `core::batch` batched pre-check (one shared four-pairing product for
//! all `t+1` shares).

use borndist_bench::{bench_rng, ro_setup, MESSAGE};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_combine(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_combine_vs_t");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    for t in [1usize, 2, 4, 8, 16, 32] {
        let n = 2 * t + 1;
        let (scheme, km) = ro_setup(t, n);
        let partials: Vec<_> = (1..=(t as u32 + 1))
            .map(|i| scheme.share_sign(&km.shares[&i], MESSAGE))
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, _| {
            b.iter(|| scheme.combine(&km.params, &partials).unwrap())
        });
    }
    g.finish();
}

/// Robust combine: the batched optimistic path vs per-share filtering,
/// all shares valid (the common case a serving combiner sees).
fn bench_robust_combine(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_robust_combine");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    let mut rng = bench_rng();
    for t in [2usize, 8] {
        let n = 2 * t + 1;
        let (scheme, km) = ro_setup(t, n);
        let partials: Vec<_> = (1..=(t as u32 + 1))
            .map(|i| scheme.share_sign(&km.shares[&i], MESSAGE))
            .collect();
        g.bench_with_input(BenchmarkId::new("per_share_verified", t), &t, |b, _| {
            b.iter(|| {
                scheme
                    .combine_verified(&km.params, &km.verification_keys, MESSAGE, &partials)
                    .unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("batch_verified", t), &t, |b, _| {
            b.iter(|| {
                scheme
                    .combine_batch_verified(
                        &km.params,
                        &km.verification_keys,
                        MESSAGE,
                        &partials,
                        &mut rng,
                    )
                    .unwrap()
            })
        });
        // The per-share filter over keygen-cached prepared keys (the
        // pessimistic path a combiner takes after a batch rejection).
        g.bench_with_input(BenchmarkId::new("per_share_prepared", t), &t, |b, _| {
            b.iter(|| {
                scheme
                    .combine_verified_prepared(&km.params, &km.prepared_vks, MESSAGE, &partials)
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_combine, bench_robust_combine);
criterion_main!(benches);
