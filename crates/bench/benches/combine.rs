//! E6 — `Combine` cost vs threshold `t`: Lagrange interpolation in the
//! exponent over `t+1` partial signatures (Pippenger MSM inside).

use borndist_bench::{ro_setup, MESSAGE};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_combine(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_combine_vs_t");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    for t in [1usize, 2, 4, 8, 16, 32] {
        let n = 2 * t + 1;
        let (scheme, km) = ro_setup(t, n);
        let partials: Vec<_> = (1..=(t as u32 + 1))
            .map(|i| scheme.share_sign(&km.shares[&i], MESSAGE))
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, _| {
            b.iter(|| scheme.combine(&km.params, &partials).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_combine);
criterion_main!(benches);
