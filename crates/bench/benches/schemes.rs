//! E8 — cross-scheme comparison: §3 ROM vs Appendix F DLIN vs §4
//! standard-model vs Boldyreva, on identical (t, n) = (2, 5) committees.
//! The paper's qualitative claim: the standard-model scheme is "somewhat
//! less efficient … but remains sufficiently efficient"; DLIN costs ~1.5x
//! the ROM scheme (3 vs 2 signature elements, 2 vs 1 equations).

use borndist_baselines::boldyreva;
use borndist_bench::{bench_rng, MESSAGE};
use borndist_core::ro::ThresholdScheme;
use borndist_core::standard::StandardScheme;
use borndist_core::DlinScheme;
use borndist_shamir::ThresholdParams;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

const T: usize = 2;
const N: usize = 5;

fn bench_all_schemes(c: &mut Criterion) {
    let params = ThresholdParams::new(T, N).unwrap();
    let mut rng = bench_rng();

    let ro = ThresholdScheme::new(b"bench-cmp");
    let ro_km = ro.dealer_keygen(params, &mut rng);
    let ro_partials: Vec<_> = (1..=(T as u32 + 1))
        .map(|i| ro.share_sign(&ro_km.shares[&i], MESSAGE))
        .collect();
    let ro_sig = ro.combine(&params, &ro_partials).unwrap();

    let dlin = DlinScheme::new(b"bench-cmp");
    let dlin_km = dlin.dealer_keygen(params, &mut rng);
    let dlin_partials: Vec<_> = (1..=(T as u32 + 1))
        .map(|i| dlin.share_sign(&dlin_km.shares[&i], MESSAGE))
        .collect();
    let dlin_sig = dlin.combine(&params, &dlin_partials).unwrap();

    let std_s = StandardScheme::new(b"bench-cmp");
    let std_km = std_s.dealer_keygen(params, &mut rng);
    let std_partials: Vec<_> = (1..=(T as u32 + 1))
        .map(|i| std_s.share_sign(&std_km.shares[&i], MESSAGE, &mut rng))
        .collect();
    let std_sig = std_s
        .combine(&params, MESSAGE, &std_partials, &mut rng)
        .unwrap();

    let bold_km = boldyreva::dealer_keygen(params, &mut rng);
    let bold_partials: Vec<_> = (1..=(T as u32 + 1))
        .map(|i| boldyreva::share_sign(&bold_km.shares[&i], MESSAGE))
        .collect();
    let bold_sig = boldyreva::combine(&params, &bold_partials).unwrap();

    let mut g = c.benchmark_group("e8_schemes");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));

    g.bench_function("ro/share_sign", |b| {
        b.iter(|| ro.share_sign(&ro_km.shares[&1], MESSAGE))
    });
    g.bench_function("ro/verify", |b| {
        b.iter(|| ro.verify(&ro_km.public_key, MESSAGE, &ro_sig))
    });

    g.bench_function("dlin/share_sign", |b| {
        b.iter(|| dlin.share_sign(&dlin_km.shares[&1], MESSAGE))
    });
    g.bench_function("dlin/verify", |b| {
        b.iter(|| dlin.verify(&dlin_km.public_key, MESSAGE, &dlin_sig))
    });

    g.bench_function("std/share_sign", |b| {
        let mut r = bench_rng();
        b.iter(|| std_s.share_sign(&std_km.shares[&1], MESSAGE, &mut r))
    });
    g.bench_function("std/verify", |b| {
        b.iter(|| std_s.verify(&std_km.public_key, MESSAGE, &std_sig))
    });
    g.bench_function("std/combine", |b| {
        let mut r = bench_rng();
        b.iter(|| {
            std_s
                .combine(&params, MESSAGE, &std_partials, &mut r)
                .unwrap()
        })
    });

    g.bench_function("boldyreva/share_sign", |b| {
        b.iter(|| boldyreva::share_sign(&bold_km.shares[&1], MESSAGE))
    });
    g.bench_function("boldyreva/verify", |b| {
        b.iter(|| boldyreva::verify(&bold_km.public_key, MESSAGE, &bold_sig))
    });

    g.finish();
}

criterion_group!(benches, bench_all_schemes);
criterion_main!(benches);
