//! Reactor framing-layer throughput: the incremental codecs every
//! socket byte crosses under `TransportKind::TcpReactor` (PR 10).
//!
//! Three costs bound how fast the single poll loop can move frames:
//! encoding an envelope with its length prefix (`frame_envelope`),
//! extracting envelopes from an inbound byte stream (`FrameReader`),
//! and draining a writer queue through partial writes (`WriteQueue`).
//! The reader is measured both on whole-frame batches (the loopback
//! fast path) and on adversarially fragmented chunks (the partial-read
//! resumption path the reactor exists to handle).

use borndist_net::mesh::{frame_envelope, Envelope, Flush, FrameReader, WriteQueue};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// A representative round of mesh traffic: one broadcast plus one
/// private payload per peer, then the round barrier.
fn round_envelopes(peers: u32, frame_len: usize) -> Vec<Envelope> {
    let mut envs = Vec::new();
    for round in 0..2u32 {
        for _ in 0..peers {
            envs.push(Envelope::Payload {
                round,
                broadcast: true,
                frame: vec![0xA5; frame_len],
            });
            envs.push(Envelope::Payload {
                round,
                broadcast: false,
                frame: vec![0x5A; frame_len],
            });
        }
        envs.push(Envelope::EndRound { round });
    }
    envs
}

fn wire_bytes(envs: &[Envelope]) -> Vec<u8> {
    envs.iter().flat_map(frame_envelope).collect()
}

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("framing_encode");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    for frame_len in [64usize, 1024, 16 * 1024] {
        let env = Envelope::Payload {
            round: 3,
            broadcast: false,
            frame: vec![0xA5; frame_len],
        };
        g.bench_with_input(
            BenchmarkId::new("frame_envelope", frame_len),
            &env,
            |b, env| b.iter(|| frame_envelope(env)),
        );
    }
    g.finish();
}

fn bench_reader(c: &mut Criterion) {
    let envs = round_envelopes(16, 1024);
    let bytes = wire_bytes(&envs);

    let mut g = c.benchmark_group("framing_reader");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));

    // Loopback fast path: the whole round arrives in one read.
    g.bench_function("feed_whole", |b| {
        b.iter(|| {
            let mut reader = FrameReader::new();
            let out = reader.feed(&bytes).unwrap();
            assert_eq!(out.len(), envs.len());
            out
        })
    });

    // Fragmented path: every read stops mid-frame, so each chunk after
    // the first is a partial-read resumption.
    for chunk in [7usize, 100, 1500] {
        g.bench_with_input(BenchmarkId::new("feed_chunked", chunk), &chunk, |b, &sz| {
            b.iter(|| {
                let mut reader = FrameReader::new();
                let mut total = 0usize;
                for piece in bytes.chunks(sz) {
                    total += reader.feed(piece).unwrap().len();
                }
                assert_eq!(total, envs.len());
                assert!(reader.resumptions() > 0);
                total
            })
        });
    }
    g.finish();
}

/// A sink that accepts at most `cap` bytes per write, forcing the
/// queue through its partial-write offset bookkeeping.
struct Throttled {
    out: Vec<u8>,
    cap: usize,
}

impl std::io::Write for Throttled {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = buf.len().min(self.cap);
        self.out.extend_from_slice(&buf[..n]);
        Ok(n)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn bench_writer(c: &mut Criterion) {
    let envs = round_envelopes(16, 1024);
    let total: u64 = envs.iter().map(|e| frame_envelope(e).len() as u64).sum();

    let mut g = c.benchmark_group("framing_writer");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));

    for cap in [usize::MAX, 1500] {
        let label = if cap == usize::MAX {
            "unthrottled"
        } else {
            "mtu1500"
        };
        g.bench_function(BenchmarkId::new("flush", label), |b| {
            b.iter(|| {
                let mut q = WriteQueue::new();
                for env in &envs {
                    q.push(env);
                }
                let mut sink = Throttled {
                    out: Vec::with_capacity(total as usize),
                    cap,
                };
                assert_eq!(q.flush(&mut sink), Flush::Drained);
                assert_eq!(sink.out.len() as u64, total);
                sink.out
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_encode, bench_reader, bench_writer);
criterion_main!(benches);
