//! E9 — proactive refresh (§3.3): cost of one epoch (zero-resharing DKG
//! + share/VK updates) and of recovering one lost share.

use borndist_bench::bench_rng;
use borndist_core::proactive::ProactiveDeployment;
use borndist_core::ro::ThresholdScheme;
use borndist_shamir::ThresholdParams;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeMap;
use std::time::Duration;

fn deployment(t: usize, n: usize) -> ProactiveDeployment {
    let scheme = ThresholdScheme::new(b"bench-proactive");
    let mut rng = bench_rng();
    let km = scheme.dealer_keygen(ThresholdParams::new(t, n).unwrap(), &mut rng);
    ProactiveDeployment::new(scheme, km)
}

fn bench_refresh(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_proactive");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(5));
    for n in [4usize, 8] {
        let t = (n - 1) / 2;
        g.bench_with_input(BenchmarkId::new("advance_epoch", n), &n, |b, _| {
            let mut dep = deployment(t, n);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                dep.refresh_epoch(
                    &BTreeMap::new(),
                    seed,
                    &borndist_net::TransportKind::Lockstep,
                )
                .unwrap()
            })
        });
    }
    let dep = deployment(2, 5);
    g.bench_function("recover_share_t2", |b| {
        let mut rng = bench_rng();
        b.iter(|| dep.recover_share(&[1, 2, 4], 3, &mut rng).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_refresh);
criterion_main!(benches);
