//! E5 — `Dist-Keygen` cost vs `n`: wall-clock time plus (printed once)
//! round/message/byte metrics of the simulated network — the paper's
//! "single communication round when all players follow the protocol".

use borndist_dkg::{dkg_session, standard_config};
use borndist_net::TransportKind;
use borndist_shamir::ThresholdParams;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeMap;
use std::time::Duration;

fn bench_dkg(c: &mut Criterion) {
    // Print the communication metrics table once (captured in bench logs).
    println!("\nE5 DKG communication (honest run, width 2):");
    println!(
        "{:<6} {:<4} {:>8} {:>10} {:>12} {:>14} {:>12}",
        "n", "t", "rounds", "active", "messages", "bytes", "elapsed"
    );
    for n in [4usize, 8, 16] {
        let t = (n - 1) / 2;
        let cfg = standard_config(ThresholdParams::new(t, n).unwrap(), 2, b"bench-dkg", false);
        let (_, m) = dkg_session(&cfg, &BTreeMap::new(), 1, &TransportKind::Lockstep).unwrap();
        println!(
            "{:<6} {:<4} {:>8} {:>10} {:>12} {:>14} {:>9.1} ms",
            n,
            t,
            m.total_rounds,
            m.active_rounds,
            m.messages,
            m.bytes,
            m.elapsed.as_secs_f64() * 1e3
        );
    }

    let mut g = c.benchmark_group("e5_dkg_vs_n");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(5));
    for n in [4usize, 8, 16] {
        let t = (n - 1) / 2;
        let cfg = standard_config(ThresholdParams::new(t, n).unwrap(), 2, b"bench-dkg", false);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                dkg_session(&cfg, &BTreeMap::new(), seed, &TransportKind::Lockstep).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_dkg);
criterion_main!(benches);
