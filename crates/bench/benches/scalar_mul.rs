//! The GLV/GLS kernel pass (ROADMAP item 2): per-ladder costs on both
//! curve groups plus the decomposition itself, the criterion-grade
//! companion to the `scalar_mul_throughput` CI gate
//! (`BENCH_scalar_mul.json`).

use borndist_bench::bench_rng;
use borndist_pairing::{decompose_g1, decompose_g2, Fr, G1Projective, G2Projective};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_g1_ladders(c: &mut Criterion) {
    let mut rng = bench_rng();
    let base = G1Projective::random(&mut rng);
    let s = Fr::random(&mut rng);

    let mut g = c.benchmark_group("g1_scalar_mul");
    g.warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    g.bench_function("schoolbook", |b| {
        b.iter(|| base.mul_schoolbook(&s.to_le_bits()))
    });
    g.bench_function("wnaf", |b| {
        b.iter(|| base.mul_vartime_limbs(&s.to_le_bits()))
    });
    g.bench_function("glv2", |b| b.iter(|| base.mul(&s)));
    g.finish();
}

fn bench_g2_ladders(c: &mut Criterion) {
    let mut rng = bench_rng();
    let base = G2Projective::random(&mut rng);
    let s = Fr::random(&mut rng);

    let mut g = c.benchmark_group("g2_scalar_mul");
    g.warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    g.bench_function("schoolbook", |b| {
        b.iter(|| base.mul_schoolbook(&s.to_le_bits()))
    });
    g.bench_function("wnaf", |b| {
        b.iter(|| base.mul_vartime_limbs(&s.to_le_bits()))
    });
    g.bench_function("gls4", |b| b.iter(|| base.mul(&s)));
    g.finish();
}

fn bench_decomposition(c: &mut Criterion) {
    let mut rng = bench_rng();
    let s = Fr::random(&mut rng);

    let mut g = c.benchmark_group("scalar_decomposition");
    g.warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    g.bench_function("glv2_split", |b| b.iter(|| decompose_g1(&s)));
    g.bench_function("gls4_split", |b| b.iter(|| decompose_g2(&s)));
    g.finish();
}

criterion_group!(
    benches,
    bench_g1_ladders,
    bench_g2_ladders,
    bench_decomposition
);
criterion_main!(benches);
