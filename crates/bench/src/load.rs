//! Load-generation scaffolding for the sustained-throughput harness
//! (`examples/service_load.rs`, experiment E11 in DESIGN.md §3): a
//! deterministic open-loop arrival schedule over a mixed operation
//! class, plus per-class latency recording that summarizes into
//! [`LatencySummary`] percentiles and an ops/sec figure.
//!
//! Open-loop means the schedule fixes *when* each operation is offered,
//! independent of how fast the system answers — the honest way to
//! measure a service under a target arrival rate (a closed loop would
//! let a slow server throttle its own load and flatter the numbers).

use borndist_net::LatencySummary;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::time::Duration;

/// The operation classes of the mixed workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum OpClass {
    /// One signature through the verification gateway.
    Verify,
    /// A small randomized batch through `batch_verify`.
    BatchVerify,
    /// One partial signature (`share_sign`).
    PartialSign,
    /// Combine a threshold of partial signatures.
    Combine,
}

impl OpClass {
    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            OpClass::Verify => "verify",
            OpClass::BatchVerify => "batch_verify",
            OpClass::PartialSign => "partial_sign",
            OpClass::Combine => "combine",
        }
    }
}

/// A workload mix: relative weights per class (need not sum to
/// anything in particular).
#[derive(Clone, Copy, Debug)]
pub struct WorkloadMix {
    /// Weight of [`OpClass::Verify`].
    pub verify: u32,
    /// Weight of [`OpClass::BatchVerify`].
    pub batch_verify: u32,
    /// Weight of [`OpClass::PartialSign`].
    pub partial_sign: u32,
    /// Weight of [`OpClass::Combine`].
    pub combine: u32,
}

impl WorkloadMix {
    /// The E11 default: verification-dominated gateway traffic with a
    /// signing side-channel.
    pub fn standard() -> Self {
        WorkloadMix {
            verify: 12,
            batch_verify: 2,
            partial_sign: 4,
            combine: 2,
        }
    }

    fn total(&self) -> u32 {
        self.verify + self.batch_verify + self.partial_sign + self.combine
    }
}

/// One scheduled operation: what to run and when to offer it, as an
/// offset from the run's start.
#[derive(Clone, Copy, Debug)]
pub struct ScheduledOp {
    /// The operation class.
    pub class: OpClass,
    /// Offset from the run start at which the operation is offered.
    pub at: Duration,
}

/// Builds a deterministic open-loop schedule: `count` operations drawn
/// from `mix` by a seeded RNG, offered at a constant `rate_per_sec`
/// with ±50% per-gap jitter (same seed → same schedule, so runs are
/// comparable across hosts and thread counts).
pub fn arrival_schedule(
    count: usize,
    rate_per_sec: f64,
    mix: WorkloadMix,
    seed: u64,
) -> Vec<ScheduledOp> {
    assert!(rate_per_sec > 0.0, "arrival rate must be positive");
    assert!(mix.total() > 0, "workload mix must have positive weight");
    let mut rng = StdRng::seed_from_u64(seed);
    let mean_gap_ns = 1e9 / rate_per_sec;
    let mut clock_ns = 0.0f64;
    (0..count)
        .map(|_| {
            // Uniform jitter in [0.5, 1.5) of the mean gap keeps the
            // long-run rate exact while avoiding lockstep arrivals.
            let jitter = 0.5 + (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            clock_ns += mean_gap_ns * jitter;
            let pick = rng.next_u32() % mix.total();
            let class = if pick < mix.verify {
                OpClass::Verify
            } else if pick < mix.verify + mix.batch_verify {
                OpClass::BatchVerify
            } else if pick < mix.verify + mix.batch_verify + mix.partial_sign {
                OpClass::PartialSign
            } else {
                OpClass::Combine
            };
            ScheduledOp {
                class,
                at: Duration::from_nanos(clock_ns as u64),
            }
        })
        .collect()
}

/// Accumulates per-operation latencies for one class and summarizes
/// them with an ops/sec figure over the measured span.
#[derive(Clone, Debug, Default)]
pub struct ClassRecorder {
    samples: Vec<Duration>,
}

impl ClassRecorder {
    /// Records one completed operation.
    pub fn record(&mut self, latency: Duration) {
        self.samples.push(latency);
    }

    /// Number of operations recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Latency percentiles of everything recorded.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary::from_samples(&self.samples)
    }

    /// Completed operations per second over `elapsed` wall-clock.
    pub fn ops_per_sec(&self, elapsed: Duration) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        self.samples.len() as f64 / elapsed.as_secs_f64()
    }
}

/// Formats one JSON row of the BENCH_service.json report.
pub fn json_row(name: &str, ops: usize, elapsed: Duration, summary: &LatencySummary) -> String {
    let ops_per_sec = if elapsed.is_zero() {
        0.0
    } else {
        ops as f64 / elapsed.as_secs_f64()
    };
    format!(
        "{{\"name\": \"{}\", \"ops\": {}, \"elapsed_ms\": {:.1}, \"ops_per_sec\": {:.1}, \
         \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \"max_ms\": {:.3}}}",
        name,
        ops,
        elapsed.as_secs_f64() * 1e3,
        ops_per_sec,
        summary.p50.as_secs_f64() * 1e3,
        summary.p95.as_secs_f64() * 1e3,
        summary.p99.as_secs_f64() * 1e3,
        summary.max.as_secs_f64() * 1e3,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_rate_accurate() {
        let a = arrival_schedule(1000, 200.0, WorkloadMix::standard(), 7);
        let b = arrival_schedule(1000, 200.0, WorkloadMix::standard(), 7);
        assert_eq!(a.len(), 1000);
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.at == y.at && x.class == y.class));
        // 1000 ops at 200/s should span ~5s; jitter is zero-mean.
        let span = a.last().unwrap().at.as_secs_f64();
        assert!((4.0..6.0).contains(&span), "span {} off target", span);
        // Monotone offer times.
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        // Every class shows up under the standard mix.
        for class in [
            OpClass::Verify,
            OpClass::BatchVerify,
            OpClass::PartialSign,
            OpClass::Combine,
        ] {
            assert!(a.iter().any(|op| op.class == class), "{:?} absent", class);
        }
    }

    #[test]
    fn recorder_summarizes() {
        let mut rec = ClassRecorder::default();
        for ms in [1u64, 2, 3, 4, 100] {
            rec.record(Duration::from_millis(ms));
        }
        let s = rec.summary();
        assert_eq!(s.count, 5);
        assert_eq!(s.p50, Duration::from_millis(3));
        assert_eq!(s.max, Duration::from_millis(100));
        let rate = rec.ops_per_sec(Duration::from_secs(5));
        assert!((rate - 1.0).abs() < 1e-9);
    }
}
