//! Shared helpers for the benchmark suite.
//!
//! Each bench target regenerates one experiment from the index in
//! DESIGN.md §3 (the paper has no numbered tables/figures; its
//! quantitative claims are mapped to experiments E1–E13 there).

use borndist_core::ro::{KeyMaterial, ThresholdScheme};
use borndist_shamir::ThresholdParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod load;

/// Deterministic RNG for reproducible benchmark inputs.
pub fn bench_rng() -> StdRng {
    StdRng::seed_from_u64(0xBE7C)
}

/// Standard §3 scheme + dealer key material for signing-path benches
/// (dealer keygen so the DKG cost is excluded — it has its own bench).
pub fn ro_setup(t: usize, n: usize) -> (ThresholdScheme, KeyMaterial) {
    let scheme = ThresholdScheme::new(b"bench");
    let mut rng = bench_rng();
    let km = scheme.dealer_keygen(ThresholdParams::new(t, n).unwrap(), &mut rng);
    (scheme, km)
}

/// The benchmark message.
pub const MESSAGE: &[u8] = b"benchmark message: reproduce the paper";
