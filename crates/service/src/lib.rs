//! # borndist-service
//!
//! The threshold-signing **daemon**: the paper's schemes deployed as `N`
//! long-running OS processes plus a front-end, talking over real TCP
//! sockets (DESIGN.md §2 "TCP transport & the signing daemon").
//!
//! Lifecycle of a deployment:
//!
//! 1. **Birth** — the `N` player processes run Pedersen's DKG (§3.1)
//!    over a [`borndist_net::TcpTransport`] mesh; no process ever holds
//!    the key.
//! 2. **Ready** — each player joins a second mesh that includes the
//!    front-end and ships it a [`ServiceMessage::Ready`] carrying the
//!    public key and that player's local DKG traffic metrics; the
//!    front-end merges them ([`borndist_net::Metrics::merge`]) into the
//!    same global view an in-process transport would have metered.
//! 3. **Serve** — the front-end accepts framed [`ClientRequest`]s on a
//!    client socket and drives concurrent `core::netsign` mux sessions,
//!    bounded by `max_in_flight` (backpressure); combined signatures
//!    stream back as [`ClientResponse::Signed`].
//! 4. **Shutdown** — a [`ClientRequest::Shutdown`] drains in-flight
//!    sessions, closes the mesh, and answers with a final
//!    [`ClientResponse::Summary`] (public key, merged DKG metrics,
//!    high-water mark) for audit gates.
//!
//! The `smoke` mode wires all of the above together: it spawns the
//! player and front-end processes, replays the same DKG in-process over
//! a [`borndist_net::ChannelTransport`], and asserts the merged
//! cross-process metrics are **byte-identical**
//! ([`borndist_net::Metrics::same_traffic`]) — the CI gate that the TCP
//! path is the same protocol, not a lookalike.

use borndist_core::aggregate::AggPublicKey;
use borndist_core::gateway::{AggregationGateway, GatewayStats, VerifyRequest};
use borndist_core::netsign::{MuxCoordinator, MuxMessage, MuxOutcome, MuxSignerPlayer};
use borndist_core::ro::{KeyMaterial, PublicKey, Signature, ThresholdScheme};
use borndist_net::{
    CodecError, Delivered, LatencySummary, Metrics, Outgoing, PlayerId, Protocol, Recipient,
    RoundAction, TransportStats, Wire,
};
use borndist_shamir::ThresholdParams;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::sync::mpsc;

pub mod daemon;

/// Round budget for the DKG mesh (deal, complain, answer, finalize,
/// plus finish slack — matches the in-process drivers).
pub const DKG_ROUND_BUDGET: usize = 8;

/// Round budget for the signing mesh. Rounds are cheap (an idle round
/// is one `EndRound` marker per link and a 1 ms coordinator sleep), so
/// this bounds a daemon's lifetime at roughly `100_000` idle-ish
/// rounds rather than any meaningful work limit.
pub const SIGN_ROUND_BUDGET: usize = 100_000;

/// Largest accepted client frame (requests carry raw messages to sign).
pub const MAX_CLIENT_FRAME: usize = 16 << 20;

// ---------------------------------------------------------------------
// Service mesh protocol: Ready handoff + multiplexed signing.
// ---------------------------------------------------------------------

const TAG_READY: u8 = 0;
const TAG_MUX: u8 = 1;

/// Wire message of the signing mesh (players `1..=n` plus the
/// front-end at id `n+1`).
//
// `Ready` dominates the enum size (a public key plus a full `Metrics`
// snapshot), but it crosses the wire only during the one-shot handoff
// after DKG; boxing it would complicate the `Wire` impl for no steady-
// state gain.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum ServiceMessage {
    /// Player → front-end (private): the DKG finished; here is the
    /// public key and this player's local traffic view. Retransmitted
    /// until the front-end's first broadcast proves receipt.
    Ready {
        /// The jointly generated public key.
        public_key: PublicKey,
        /// This player's sender-side DKG metrics (merged by the
        /// front-end into the global view).
        dkg_metrics: Metrics,
        /// This player's DKG-mesh socket counters (summed by the
        /// front-end into the deployment aggregate).
        dkg_transport: TransportStats,
    },
    /// A multiplexed-signing message, verbatim.
    Mux(MuxMessage),
}

impl Wire for ServiceMessage {
    fn encode_to(&self, out: &mut Vec<u8>) {
        match self {
            ServiceMessage::Ready {
                public_key,
                dkg_metrics,
                dkg_transport,
            } => {
                out.push(TAG_READY);
                public_key.encode_to(out);
                dkg_metrics.encode_to(out);
                dkg_transport.encode_to(out);
            }
            ServiceMessage::Mux(m) => {
                out.push(TAG_MUX);
                m.encode_to(out);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        match u8::decode(input)? {
            TAG_READY => Ok(ServiceMessage::Ready {
                public_key: PublicKey::decode(input)?,
                dkg_metrics: Metrics::decode(input)?,
                dkg_transport: TransportStats::decode(input)?,
            }),
            TAG_MUX => Ok(ServiceMessage::Mux(MuxMessage::decode(input)?)),
            tag => Err(CodecError::InvalidTag(tag)),
        }
    }
}

/// What the front-end learned from the `Ready` handoff.
#[derive(Clone, Debug)]
pub struct ReadyInfo {
    /// The public key every player reported.
    pub public_key: PublicKey,
    /// All players' DKG metrics merged into the global traffic view.
    pub dkg_metrics: Metrics,
    /// All players' DKG-mesh socket counters summed into a deployment
    /// aggregate.
    pub dkg_transport: TransportStats,
}

/// Per-node output of a signing-mesh run.
#[derive(Debug, Default)]
pub struct ServiceOutcome {
    /// The multiplexed-signing outcome (signatures observed; the
    /// front-end additionally carries the backpressure high-water
    /// mark).
    pub mux: MuxOutcome,
    /// Front-end only: the merged `Ready` information.
    pub ready: Option<ReadyInfo>,
}

fn mux_inbox(inbox: &[Delivered<ServiceMessage>]) -> Vec<Delivered<MuxMessage>> {
    inbox
        .iter()
        .filter_map(|d| match &d.msg {
            Ok(ServiceMessage::Mux(m)) => Some(Delivered {
                from: d.from,
                broadcast: d.broadcast,
                msg: Ok(m.clone()),
            }),
            Ok(ServiceMessage::Ready { .. }) => None,
            // Malformed frames propagate so the inner protocol applies
            // its own decode-validate-then-process discipline.
            Err(e) => Some(Delivered {
                from: d.from,
                broadcast: d.broadcast,
                msg: Err(*e),
            }),
        })
        .collect()
}

fn wrap_mux(out: Vec<Outgoing<MuxMessage>>) -> Vec<Outgoing<ServiceMessage>> {
    out.into_iter()
        .map(|o| Outgoing {
            to: o.to,
            msg: ServiceMessage::Mux(o.msg),
        })
        .collect()
}

/// One signing node of the daemon: a [`MuxSignerPlayer`] that first
/// hands its DKG result to the front-end.
pub struct ServicePlayer {
    inner: MuxSignerPlayer,
    id: PlayerId,
    frontend: PlayerId,
    /// `Ready` payload, retransmitted every round until any frame from
    /// the front-end arrives (its first `Open`/`Shutdown` broadcast
    /// proves the handoff landed — it only opens sessions once all
    /// `Ready`s are in).
    ready: Option<(PublicKey, Metrics, TransportStats)>,
}

impl ServicePlayer {
    /// Builds the signing node for player `id` of an `n`-player
    /// deployment from its assembled key material. The front-end sits
    /// at id `n+1`.
    pub fn new(
        scheme: ThresholdScheme,
        km: &KeyMaterial,
        id: PlayerId,
        dkg_metrics: Metrics,
        dkg_transport: TransportStats,
    ) -> Self {
        let n = km.params.n as PlayerId;
        let signer_ids: Vec<PlayerId> = (1..=n).collect();
        let inner = MuxSignerPlayer::new(
            scheme,
            km.params,
            km.public_key.clone(),
            km.verification_keys.clone(),
            km.shares[&id].clone(),
            signer_ids,
        );
        ServicePlayer {
            inner,
            id,
            frontend: n + 1,
            ready: Some((km.public_key.clone(), dkg_metrics, dkg_transport)),
        }
    }
}

impl Protocol for ServicePlayer {
    type Message = ServiceMessage;
    type Output = ServiceOutcome;

    fn round(
        &mut self,
        round: usize,
        inbox: &[Delivered<ServiceMessage>],
    ) -> RoundAction<ServiceMessage, ServiceOutcome> {
        if inbox.iter().any(|d| d.from == self.frontend) {
            self.ready = None;
        }
        match self.inner.round(round, &mux_inbox(inbox)) {
            RoundAction::Continue(out) => {
                let mut out = wrap_mux(out);
                if let Some((public_key, dkg_metrics, dkg_transport)) = self.ready.clone() {
                    out.push(Outgoing {
                        to: Recipient::Private(self.frontend),
                        msg: ServiceMessage::Ready {
                            public_key,
                            dkg_metrics,
                            dkg_transport,
                        },
                    });
                }
                RoundAction::Continue(out)
            }
            RoundAction::Finish(mux) => RoundAction::Finish(ServiceOutcome { mux, ready: None }),
        }
    }

    fn id(&self) -> PlayerId {
        self.id
    }
}

/// Where the front-end's signing requests come from.
enum CoordinatorSource {
    /// A fixed queue — deterministic runs for tests and benchmarks.
    Queue(Vec<(u64, Vec<u8>)>),
    /// Live channels — the daemon path.
    Live {
        intake: mpsc::Receiver<(u64, Vec<u8>)>,
        completed: mpsc::Sender<(u64, Signature)>,
    },
}

/// The daemon front-end as a protocol player: waits for every player's
/// [`ServiceMessage::Ready`], merges the DKG metrics, then runs a
/// [`MuxCoordinator`] over the learned public key.
pub struct ServiceCoordinator {
    id: PlayerId,
    n: usize,
    scheme: ThresholdScheme,
    max_in_flight: usize,
    source: Option<CoordinatorSource>,
    ready: BTreeMap<PlayerId, (PublicKey, Metrics, TransportStats)>,
    inner: Option<MuxCoordinator>,
    info: Option<ReadyInfo>,
}

impl ServiceCoordinator {
    fn base(n: usize, scheme: ThresholdScheme, max_in_flight: usize) -> Self {
        ServiceCoordinator {
            id: n as PlayerId + 1,
            n,
            scheme,
            max_in_flight,
            source: None,
            ready: BTreeMap::new(),
            inner: None,
            info: None,
        }
    }

    /// Front-end with a fixed request queue (deterministic).
    pub fn with_requests(
        n: usize,
        scheme: ThresholdScheme,
        max_in_flight: usize,
        requests: Vec<(u64, Vec<u8>)>,
    ) -> Self {
        let mut c = Self::base(n, scheme, max_in_flight);
        c.source = Some(CoordinatorSource::Queue(requests));
        c
    }

    /// Front-end fed by live channels (the daemon path): requests
    /// arrive on `intake` until its sender is dropped; every combined
    /// signature is pushed into `completed`.
    pub fn with_intake(
        n: usize,
        scheme: ThresholdScheme,
        max_in_flight: usize,
        intake: mpsc::Receiver<(u64, Vec<u8>)>,
        completed: mpsc::Sender<(u64, Signature)>,
    ) -> Self {
        let mut c = Self::base(n, scheme, max_in_flight);
        c.source = Some(CoordinatorSource::Live { intake, completed });
        c
    }

    fn absorb_ready(&mut self, inbox: &[Delivered<ServiceMessage>]) {
        for d in inbox {
            if let Ok(ServiceMessage::Ready {
                public_key,
                dkg_metrics,
                dkg_transport,
            }) = &d.msg
            {
                if !d.broadcast && d.from >= 1 && d.from <= self.n as PlayerId {
                    self.ready.entry(d.from).or_insert_with(|| {
                        (public_key.clone(), dkg_metrics.clone(), *dkg_transport)
                    });
                }
            }
        }
        if self.inner.is_none() && self.ready.len() == self.n {
            let (first, _, _) = self.ready.values().next().expect("n >= 1").clone();
            assert!(
                self.ready.values().all(|(pk, _, _)| *pk == first),
                "players disagree on the DKG public key"
            );
            let merged = Metrics::merge(self.ready.values().map(|(_, m, _)| m));
            let mut transport = TransportStats::default();
            for (_, _, t) in self.ready.values() {
                transport.absorb(t);
            }
            self.info = Some(ReadyInfo {
                public_key: first.clone(),
                dkg_metrics: merged,
                dkg_transport: transport,
            });
            let inner = match self.source.take().expect("source consumed once") {
                CoordinatorSource::Queue(requests) => MuxCoordinator::with_requests(
                    self.id,
                    self.scheme.clone(),
                    first,
                    self.max_in_flight,
                    requests,
                ),
                CoordinatorSource::Live { intake, completed } => MuxCoordinator::with_intake(
                    self.id,
                    self.scheme.clone(),
                    first,
                    self.max_in_flight,
                    intake,
                    completed,
                ),
            };
            self.inner = Some(inner);
        }
    }
}

impl Protocol for ServiceCoordinator {
    type Message = ServiceMessage;
    type Output = ServiceOutcome;

    fn round(
        &mut self,
        round: usize,
        inbox: &[Delivered<ServiceMessage>],
    ) -> RoundAction<ServiceMessage, ServiceOutcome> {
        self.absorb_ready(inbox);
        let Some(inner) = self.inner.as_mut() else {
            // Still waiting for the mesh to report Ready.
            return RoundAction::Continue(Vec::new());
        };
        match inner.round(round, &mux_inbox(inbox)) {
            RoundAction::Continue(out) => RoundAction::Continue(wrap_mux(out)),
            RoundAction::Finish(mux) => RoundAction::Finish(ServiceOutcome {
                mux,
                ready: self.info.take(),
            }),
        }
    }

    fn id(&self) -> PlayerId {
        self.id
    }
}

// ---------------------------------------------------------------------
// Client protocol: framed request/response over the front-end socket.
// ---------------------------------------------------------------------

const TAG_SIGN: u8 = 0;
const TAG_CLIENT_SHUTDOWN: u8 = 1;
const TAG_VERIFY: u8 = 2;
const TAG_SIGNED: u8 = 0;
const TAG_SUMMARY: u8 = 1;
const TAG_VERIFIED: u8 = 2;

/// A client → front-end frame.
// `Verify` dominates the enum size (an inline `AggPublicKey` is two G2
// plus two G1 points); boxing it would cost an allocation per request on
// the daemon's hot intake path just to shrink the transient decode value.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientRequest {
    /// Sign `msg`; the signature comes back tagged with `id`.
    Sign {
        /// Client-chosen request id (the mux session id).
        id: u64,
        /// The message to threshold-sign.
        msg: Vec<u8>,
    },
    /// Verify `sig` over `msg` under the aggregate-capable key `pk`.
    /// Routed through the front-end's [`AggregationGateway`]: answered
    /// (as [`ClientResponse::Verified`]) when the gateway's buffer for
    /// `epoch` flushes, not per request — one amortized multi-pairing
    /// covers the whole buffer.
    ///
    /// [`AggregationGateway`]: borndist_core::gateway::AggregationGateway
    Verify {
        /// Client-chosen request id.
        id: u64,
        /// Proactive epoch; the gateway never folds across epochs.
        epoch: u64,
        /// The (self-certifying) public key.
        pk: AggPublicKey,
        /// The signed message.
        msg: Vec<u8>,
        /// The signature to verify.
        sig: Signature,
    },
    /// Drain in-flight sessions, close the mesh, answer with a
    /// [`ClientResponse::Summary`], and exit.
    Shutdown,
}

impl Wire for ClientRequest {
    fn encode_to(&self, out: &mut Vec<u8>) {
        match self {
            ClientRequest::Sign { id, msg } => {
                out.push(TAG_SIGN);
                id.encode_to(out);
                msg.encode_to(out);
            }
            ClientRequest::Verify {
                id,
                epoch,
                pk,
                msg,
                sig,
            } => {
                out.push(TAG_VERIFY);
                id.encode_to(out);
                epoch.encode_to(out);
                pk.encode_to(out);
                msg.encode_to(out);
                sig.encode_to(out);
            }
            ClientRequest::Shutdown => out.push(TAG_CLIENT_SHUTDOWN),
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        match u8::decode(input)? {
            TAG_SIGN => Ok(ClientRequest::Sign {
                id: u64::decode(input)?,
                msg: Vec::<u8>::decode(input)?,
            }),
            TAG_VERIFY => Ok(ClientRequest::Verify {
                id: u64::decode(input)?,
                epoch: u64::decode(input)?,
                pk: AggPublicKey::decode(input)?,
                msg: Vec::<u8>::decode(input)?,
                sig: Signature::decode(input)?,
            }),
            TAG_CLIENT_SHUTDOWN => Ok(ClientRequest::Shutdown),
            tag => Err(CodecError::InvalidTag(tag)),
        }
    }
}

/// A front-end → client frame.
//
// `Summary` dominates the enum size (public key + merged `Metrics`) but
// is sent exactly once, as the final frame of a connection; boxing it
// would complicate the `Wire` impl for no steady-state gain.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum ClientResponse {
    /// Request `id` completed with this combined signature.
    Signed {
        /// The request this signature answers.
        id: u64,
        /// The unique combined signature.
        sig: Signature,
    },
    /// Request `id` was judged by the verification gateway.
    Verified {
        /// The request this verdict answers.
        id: u64,
        /// The request's epoch.
        epoch: u64,
        /// `true` iff the signature verifies under its (valid) key.
        valid: bool,
    },
    /// Final frame after a shutdown: the audit summary.
    Summary {
        /// The deployment's public key.
        public_key: PublicKey,
        /// Global DKG traffic metrics, merged from every player's
        /// local view.
        dkg_metrics: Metrics,
        /// Backpressure high-water mark (peak concurrent sessions).
        high_water: u64,
        /// Number of signing requests served.
        served: u64,
        /// Number of verification requests answered by the gateway.
        verified: u64,
        /// Per-request enqueue → combined-signature wall-clock
        /// percentiles for the signing path (includes backpressure
        /// queueing).
        sign_latency: LatencySummary,
        /// Per-request receive → verdict wall-clock percentiles for the
        /// verification gateway path.
        verify_latency: LatencySummary,
        /// Deployment-wide socket counters: every player's DKG-mesh
        /// stats (carried by [`ServiceMessage::Ready`]) plus the
        /// front-end's own signing-mesh stats, summed.
        transport: TransportStats,
    },
}

impl Wire for ClientResponse {
    fn encode_to(&self, out: &mut Vec<u8>) {
        match self {
            ClientResponse::Signed { id, sig } => {
                out.push(TAG_SIGNED);
                id.encode_to(out);
                sig.encode_to(out);
            }
            ClientResponse::Verified { id, epoch, valid } => {
                out.push(TAG_VERIFIED);
                id.encode_to(out);
                epoch.encode_to(out);
                out.push(u8::from(*valid));
            }
            ClientResponse::Summary {
                public_key,
                dkg_metrics,
                high_water,
                served,
                verified,
                sign_latency,
                verify_latency,
                transport,
            } => {
                out.push(TAG_SUMMARY);
                public_key.encode_to(out);
                dkg_metrics.encode_to(out);
                high_water.encode_to(out);
                served.encode_to(out);
                verified.encode_to(out);
                sign_latency.encode_to(out);
                verify_latency.encode_to(out);
                transport.encode_to(out);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        match u8::decode(input)? {
            TAG_SIGNED => Ok(ClientResponse::Signed {
                id: u64::decode(input)?,
                sig: Signature::decode(input)?,
            }),
            TAG_VERIFIED => Ok(ClientResponse::Verified {
                id: u64::decode(input)?,
                epoch: u64::decode(input)?,
                valid: match u8::decode(input)? {
                    0 => false,
                    1 => true,
                    tag => return Err(CodecError::InvalidTag(tag)),
                },
            }),
            TAG_SUMMARY => Ok(ClientResponse::Summary {
                public_key: PublicKey::decode(input)?,
                dkg_metrics: Metrics::decode(input)?,
                high_water: u64::decode(input)?,
                served: u64::decode(input)?,
                verified: u64::decode(input)?,
                sign_latency: LatencySummary::decode(input)?,
                verify_latency: LatencySummary::decode(input)?,
                transport: TransportStats::decode(input)?,
            }),
            tag => Err(CodecError::InvalidTag(tag)),
        }
    }
}

/// Writes one `u32`-length-prefixed [`Wire`] frame.
pub fn write_frame<T: Wire, W: Write>(w: &mut W, value: &T) -> std::io::Result<()> {
    let bytes = value.encode();
    let len = u32::try_from(bytes.len())
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(&bytes)?;
    w.flush()
}

/// Reads one `u32`-length-prefixed [`Wire`] frame (strict decode: the
/// payload must consume exactly the declared length).
pub fn read_frame<T: Wire, R: Read>(r: &mut R) -> std::io::Result<T> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_CLIENT_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "client frame of {} bytes exceeds cap {}",
                len, MAX_CLIENT_FRAME
            ),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    T::decode_exact(&buf).map_err(|e| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad frame: {}", e))
    })
}

// ---------------------------------------------------------------------
// Gateway worker: the verification front door's serving loop.
// ---------------------------------------------------------------------

/// How long an idle gateway worker sleeps when no buffer has a pending
/// deadline.
const GATEWAY_IDLE_TICK: std::time::Duration = std::time::Duration::from_millis(20);

/// Serves an [`AggregationGateway`] from a request channel: submissions
/// drive size/epoch flushes, the gap between arrivals drives deadline
/// flushes, and channel close drains everything left. Each
/// [`borndist_core::gateway::Verdict`] goes out as a
/// [`ClientResponse::Verified`]. Returns the gateway's final stats.
///
/// This is the one serving loop — the daemon front-end runs it on a
/// thread against the client socket's reader, and the in-process load
/// harness runs it against its generator channel, so both measure the
/// same code path.
pub fn run_gateway_worker<R: rand::RngCore>(
    mut gateway: AggregationGateway<R>,
    intake: mpsc::Receiver<VerifyRequest>,
    responses: mpsc::Sender<ClientResponse>,
) -> GatewayStats {
    let emit = |verdicts: Vec<borndist_core::gateway::Verdict>,
                responses: &mpsc::Sender<ClientResponse>| {
        for v in verdicts {
            // A closed response channel means the client is gone; keep
            // draining so the stats stay complete.
            let _ = responses.send(ClientResponse::Verified {
                id: v.id,
                epoch: v.epoch,
                valid: v.valid,
            });
        }
    };
    loop {
        let timeout = gateway
            .next_deadline()
            .map(|d| d.saturating_duration_since(std::time::Instant::now()))
            .unwrap_or(GATEWAY_IDLE_TICK);
        match intake.recv_timeout(timeout) {
            Ok(req) => emit(gateway.submit(req), &responses),
            Err(mpsc::RecvTimeoutError::Timeout) => emit(gateway.poll(), &responses),
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                emit(gateway.flush_all(), &responses);
                return *gateway.stats();
            }
        }
    }
}

// ---------------------------------------------------------------------
// Deployment topology shared by every mode.
// ---------------------------------------------------------------------

/// Which socket engine a daemon process runs its meshes on. Both move
/// the same frames through the same routing engine, so `Metrics` stay
/// byte-identical; they differ only in how the bytes move (threads vs
/// one poll loop).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MeshTransport {
    /// Thread-per-peer blocking sockets ([`borndist_net::TcpTransport`]).
    #[default]
    Threaded,
    /// One event-driven poll loop per process
    /// ([`borndist_net::ReactorTransport`]).
    Reactor,
}

impl MeshTransport {
    /// The `--transport` flag value naming this engine (inverse of
    /// [`FromStr`](std::str::FromStr)).
    pub fn flag(self) -> &'static str {
        match self {
            MeshTransport::Threaded => "tcp",
            MeshTransport::Reactor => "reactor",
        }
    }
}

impl std::str::FromStr for MeshTransport {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "tcp" | "threaded" => Ok(MeshTransport::Threaded),
            "reactor" => Ok(MeshTransport::Reactor),
            other => Err(format!(
                "unknown transport {:?} (expected tcp or reactor)",
                other
            )),
        }
    }
}

/// Everything the processes of one deployment must agree on.
#[derive(Clone, Debug)]
pub struct Topology {
    /// Threshold parameters `(t, n)`.
    pub params: ThresholdParams,
    /// Shared DKG seed (per-player RNGs derive from it).
    pub seed: u64,
    /// Hash-domain tag; all processes must use the same one.
    pub domain: Vec<u8>,
    /// DKG mesh: player `i` listens on `127.0.0.1:dkg_base + i`.
    pub dkg_base: u16,
    /// Signing mesh: node `i` (players and the front-end at `n+1`)
    /// listens on `127.0.0.1:sign_base + i`.
    pub sign_base: u16,
    /// Backpressure bound on concurrently open signing sessions.
    pub max_in_flight: usize,
    /// Socket engine for both meshes (all processes must agree — the
    /// engines interoperate on the wire, but mixing them would make the
    /// reported socket counters incoherent).
    pub transport: MeshTransport,
}

impl Topology {
    /// Socket address of node `id` on the mesh rooted at `base`.
    pub fn addr(base: u16, id: PlayerId) -> std::net::SocketAddr {
        std::net::SocketAddr::from(([127, 0, 0, 1], base + id as u16))
    }

    /// Peer map for node `me` over the ids `1..=count` at `base`.
    pub fn peers(base: u16, me: PlayerId, count: u32) -> BTreeMap<PlayerId, std::net::SocketAddr> {
        (1..=count)
            .filter(|id| *id != me)
            .map(|id| (id, Self::addr(base, id)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use borndist_net::{run_protocol, BoxedPlayer, DeliveryPolicy, TransportKind};

    fn mesh(
        n: usize,
        t: usize,
        seed: u64,
        requests: Vec<(u64, Vec<u8>)>,
        max_in_flight: usize,
    ) -> (
        ThresholdScheme,
        Vec<BoxedPlayer<ServiceMessage, ServiceOutcome>>,
    ) {
        let scheme = ThresholdScheme::new(b"service-mesh-test");
        let params = ThresholdParams::new(t, n).unwrap();
        let (km, dkg_metrics) = scheme
            .keygen_session(params, &BTreeMap::new(), seed, &TransportKind::Lockstep)
            .unwrap();
        let mut players: Vec<BoxedPlayer<ServiceMessage, ServiceOutcome>> = (1..=n as PlayerId)
            .map(|id| {
                Box::new(ServicePlayer::new(
                    scheme.clone(),
                    &km,
                    id,
                    dkg_metrics.clone(),
                    TransportStats::default(),
                )) as _
            })
            .collect();
        players.push(Box::new(ServiceCoordinator::with_requests(
            n,
            scheme.clone(),
            max_in_flight,
            requests,
        )) as _);
        (scheme, players)
    }

    #[test]
    fn service_message_roundtrips() {
        let scheme = ThresholdScheme::new(b"svc-wire");
        let params = ThresholdParams::new(1, 3).unwrap();
        let (km, metrics) = scheme
            .keygen_session(params, &BTreeMap::new(), 5, &TransportKind::Lockstep)
            .unwrap();
        let ready = ServiceMessage::Ready {
            public_key: km.public_key.clone(),
            dkg_metrics: metrics,
            dkg_transport: TransportStats {
                connections_high_water: 2,
                frames_in: 10,
                frames_out: 12,
                partial_read_resumptions: 1,
            },
        };
        match ServiceMessage::decode_exact(&ready.encode()).unwrap() {
            ServiceMessage::Ready { public_key, .. } => assert_eq!(public_key, km.public_key),
            other => panic!("wrong variant: {:?}", other),
        }
        let mux = ServiceMessage::Mux(MuxMessage::Open {
            session: 9,
            msg: b"m".to_vec(),
        });
        assert!(matches!(
            ServiceMessage::decode_exact(&mux.encode()).unwrap(),
            ServiceMessage::Mux(MuxMessage::Open { session: 9, .. })
        ));
        assert!(ServiceMessage::decode_exact(&[7u8]).is_err());
    }

    #[test]
    fn client_frames_roundtrip() {
        let req = ClientRequest::Sign {
            id: 42,
            msg: b"pay alice".to_vec(),
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &req).unwrap();
        let back: ClientRequest = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(back, req);

        let mut buf = Vec::new();
        write_frame(&mut buf, &ClientRequest::Shutdown).unwrap();
        assert_eq!(
            read_frame::<ClientRequest, _>(&mut buf.as_slice()).unwrap(),
            ClientRequest::Shutdown
        );

        // Oversized declared length is rejected before allocation.
        let huge = (MAX_CLIENT_FRAME as u32 + 1).to_be_bytes();
        assert!(read_frame::<ClientRequest, _>(&mut huge.as_slice()).is_err());
    }

    #[test]
    fn mesh_serves_requests_and_reports_merged_metrics() {
        let requests: Vec<(u64, Vec<u8>)> = (0..10u64)
            .map(|i| (i, format!("req {}", i).into_bytes()))
            .collect();
        let (scheme, players) = mesh(4, 1, 11, requests.clone(), 3);
        let (outputs, _) = run_protocol(
            &TransportKind::Channel(DeliveryPolicy::reliable()),
            players,
            10_000,
        )
        .unwrap();
        let frontend = &outputs[&5];
        let info = frontend.ready.as_ref().expect("frontend learned the key");
        assert_eq!(frontend.mux.signatures.len(), requests.len());
        assert!(frontend.mux.high_water <= 3);
        for (id, msg) in &requests {
            assert!(scheme.verify(&info.public_key, msg, &frontend.mux.signatures[id]));
        }
        // The merged DKG view counts every player's sends: n players'
        // local metrics merged by the coordinator must equal n times
        // one player's traffic only in aggregate — here we just check
        // the merge saw all four players.
        assert_eq!(info.dkg_metrics.bytes_by_player.len(), 4);
    }

    #[test]
    fn ready_handoff_survives_private_loss() {
        // 30% private drop: Ready frames (private) get lost; the
        // retransmit-until-acked rule must still converge.
        let requests = vec![(1u64, b"lossy ready".to_vec())];
        let (scheme, players) = mesh(4, 1, 13, requests, 2);
        let (outputs, _) = run_protocol(
            &TransportKind::Channel(DeliveryPolicy::lossy(0xfeed, 0.3)),
            players,
            10_000,
        )
        .unwrap();
        let frontend = &outputs[&5];
        let info = frontend.ready.as_ref().expect("Ready got through");
        assert!(scheme.verify(
            &info.public_key,
            b"lossy ready",
            &frontend.mux.signatures[&1]
        ));
    }
}
