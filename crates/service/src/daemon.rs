//! The three process modes of the `borndist-service` binary.
//!
//! * [`run_player`] — one signing node: DKG mesh, key assembly, then
//!   the long-lived signing mesh.
//! * [`run_frontend`] — the front-end: signing mesh plus the framed
//!   client socket.
//! * [`run_smoke`] — the CI gate: spawns a whole deployment as child
//!   processes, pushes signing requests through it, and asserts the
//!   merged cross-process DKG metrics are byte-identical to an
//!   in-process [`borndist_net::ChannelTransport`] run of the same
//!   protocol.

use crate::{
    read_frame, run_gateway_worker, write_frame, ClientRequest, ClientResponse, MeshTransport,
    ServiceCoordinator, ServiceOutcome, ServicePlayer, Topology, DKG_ROUND_BUDGET,
    SIGN_ROUND_BUDGET,
};
use borndist_core::aggregate::AggregateScheme;
use borndist_core::gateway::{AggregationGateway, GatewayConfig, VerifyRequest};
use borndist_core::ro::ThresholdScheme;
use borndist_dkg::dkg_players;
use borndist_net::{
    BoxedPlayer, DeliveryPolicy, LatencySummary, Metrics, PlayerId, ReactorTransport, TcpOptions,
    TcpTransport, TransportKind, TransportStats, Wire,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write as _};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;

/// Anything a daemon mode can die of.
#[derive(Debug)]
pub enum ServiceError {
    /// A transport or protocol failure.
    Net(borndist_net::Error),
    /// A socket/process failure outside the mesh.
    Io(std::io::Error),
    /// A lifecycle invariant broke (DKG abort, parity mismatch, bad
    /// child output, ...).
    Protocol(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Net(e) => write!(f, "network: {}", e),
            ServiceError::Io(e) => write!(f, "io: {}", e),
            ServiceError::Protocol(s) => write!(f, "protocol: {}", s),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Net(e) => Some(e),
            ServiceError::Io(e) => Some(e),
            ServiceError::Protocol(_) => None,
        }
    }
}

impl From<borndist_net::Error> for ServiceError {
    fn from(e: borndist_net::Error) -> Self {
        ServiceError::Net(e)
    }
}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Io(e)
    }
}

fn proto(msg: impl Into<String>) -> ServiceError {
    ServiceError::Protocol(msg.into())
}

/// Connects and runs one mesh on the topology's configured socket
/// engine. Same player, same peers, same frames — only the byte-moving
/// machinery differs, so callers treat the result identically.
fn run_mesh<M: Wire, O>(
    engine: MeshTransport,
    player: BoxedPlayer<M, O>,
    listen: std::net::SocketAddr,
    peers: std::collections::BTreeMap<PlayerId, std::net::SocketAddr>,
    budget: usize,
) -> Result<(O, Metrics, TransportStats), borndist_net::Error> {
    match engine {
        MeshTransport::Threaded => {
            TcpTransport::connect(player, listen, peers, TcpOptions::default())?
                .run_with_stats(budget)
        }
        MeshTransport::Reactor => {
            ReactorTransport::connect(player, listen, peers, TcpOptions::default())?
                .run_with_stats(budget)
        }
    }
}

/// One signing node, start to finish: DKG over the TCP mesh, local key
/// assembly, then the signing mesh until the front-end shuts the
/// deployment down. Returns the number of sessions this node observed
/// completing.
pub fn run_player(top: &Topology, id: PlayerId) -> Result<usize, ServiceError> {
    let n = top.params.n as PlayerId;
    let scheme = ThresholdScheme::new(&top.domain);
    let cfg = scheme.dkg_config(top.params);

    // Phase 1: Pedersen DKG among the players only (ports dkg_base+i).
    let mut players = dkg_players(&cfg, &BTreeMap::new(), top.seed);
    let me = players.remove(id as usize - 1);
    let (output, dkg_metrics, dkg_transport) = run_mesh(
        top.transport,
        me,
        Topology::addr(top.dkg_base, id),
        Topology::peers(top.dkg_base, id, n),
        DKG_ROUND_BUDGET,
    )?;
    let output =
        output.map_err(|abort| proto(format!("player {}: DKG aborted: {:?}", id, abort)))?;
    let km = scheme.key_material_from_output(top.params, id, &output);

    // Phase 2: the signing mesh, now including the front-end at n+1.
    let player = ServicePlayer::new(scheme, &km, id, dkg_metrics, dkg_transport);
    let (outcome, _, _) = run_mesh(
        top.transport,
        Box::new(player) as BoxedPlayer<_, ServiceOutcome>,
        Topology::addr(top.sign_base, id),
        Topology::peers(top.sign_base, id, n + 1),
        SIGN_ROUND_BUDGET,
    )?;
    Ok(outcome.mux.signatures.len())
}

/// The front-end: joins the signing mesh as node `n+1`, accepts one
/// framed client connection on `client_listener`, streams back
/// [`ClientResponse::Signed`] and [`ClientResponse::Verified`] frames,
/// and answers the client's [`ClientRequest::Shutdown`] with a final
/// [`ClientResponse::Summary`].
///
/// Signing requests feed the mux coordinator on the mesh; verification
/// requests feed an [`AggregationGateway`] worker thread
/// ([`run_gateway_worker`]) that amortizes whole buffers into single
/// multi-pairings. Both response streams merge into one writer, so
/// frames never interleave mid-write.
///
/// The listener's bound port is announced on stdout as
/// `CLIENT_PORT <port>` so a parent process can connect.
pub fn run_frontend(top: &Topology, client_listener: TcpListener) -> Result<(), ServiceError> {
    let n = top.params.n as PlayerId;
    let scheme = ThresholdScheme::new(&top.domain);

    println!("CLIENT_PORT {}", client_listener.local_addr()?.port());
    std::io::stdout().flush()?;

    let (intake_tx, intake_rx) = mpsc::channel::<(u64, Vec<u8>)>();
    let (completed_tx, completed_rx) = mpsc::channel();
    let coordinator = ServiceCoordinator::with_intake(
        top.params.n,
        scheme,
        top.max_in_flight,
        intake_rx,
        completed_tx,
    );

    // The mesh runs on its own thread; the client socket is served here.
    let mesh = {
        let listen = Topology::addr(top.sign_base, n + 1);
        let peers = Topology::peers(top.sign_base, n + 1, n);
        let engine = top.transport;
        std::thread::spawn(move || {
            run_mesh(
                engine,
                Box::new(coordinator) as BoxedPlayer<_, ServiceOutcome>,
                listen,
                peers,
                SIGN_ROUND_BUDGET,
            )
        })
    };

    // The verification gateway on its own worker thread. Weights are
    // batching randomness, not key material, but still should not be
    // replayable across daemon restarts — fold wall-clock and pid into
    // the seed.
    let (responses_tx, responses_rx) = mpsc::channel::<ClientResponse>();
    let (gw_tx, gw_rx) = mpsc::channel::<VerifyRequest>();
    let gateway_worker = {
        let gateway = AggregationGateway::new(
            AggregateScheme::new(&top.domain),
            GatewayConfig::default(),
            StdRng::seed_from_u64(
                std::time::UNIX_EPOCH
                    .elapsed()
                    .map(|d| d.as_nanos() as u64)
                    .unwrap_or(top.seed)
                    ^ u64::from(std::process::id()),
            ),
        );
        let responses = responses_tx.clone();
        std::thread::spawn(move || run_gateway_worker(gateway, gw_rx, responses))
    };

    // Forward combined signatures into the shared response stream.
    let signed_forwarder = {
        let responses = responses_tx.clone();
        std::thread::spawn(move || {
            for (id, sig) in completed_rx {
                if responses.send(ClientResponse::Signed { id, sig }).is_err() {
                    break;
                }
            }
        })
    };
    drop(responses_tx);

    let (client, _) = client_listener.accept()?;
    let mut client_out = client.try_clone()?;

    // Receive timestamps of in-flight verify requests, stamped by the
    // reader thread and consumed by the writer when the verdict goes
    // out — the verify-path analogue of the mux's sign-latency stamps.
    let verify_stamps: std::sync::Arc<
        std::sync::Mutex<std::collections::HashMap<u64, std::time::Instant>>,
    > = std::sync::Arc::new(std::sync::Mutex::new(std::collections::HashMap::new()));
    let stamps_in = std::sync::Arc::clone(&verify_stamps);

    // Reader thread: client frames → the matching intake. Dropping both
    // senders when the client says Shutdown (or hangs up) is what lets
    // the coordinator drain the mesh and the gateway flush its buffers.
    let reader = std::thread::spawn(move || {
        let mut client = client;
        // Shutdown frames, decode errors and hangups all end the stream.
        loop {
            match read_frame(&mut client) {
                Ok(ClientRequest::Sign { id, msg }) => {
                    if intake_tx.send((id, msg)).is_err() {
                        break;
                    }
                }
                Ok(ClientRequest::Verify {
                    id,
                    epoch,
                    pk,
                    msg,
                    sig,
                }) => {
                    stamps_in
                        .lock()
                        .expect("verify stamps poisoned")
                        .insert(id, std::time::Instant::now());
                    if gw_tx
                        .send(VerifyRequest {
                            id,
                            epoch,
                            pk,
                            msg,
                            sig,
                        })
                        .is_err()
                    {
                        break;
                    }
                }
                Ok(ClientRequest::Shutdown) | Err(_) => break,
            }
        }
    });

    // Single writer: stream merged responses until every producer
    // (signed forwarder + gateway worker) has hung up.
    let mut served = 0u64;
    let mut verified = 0u64;
    let mut verify_samples: Vec<std::time::Duration> = Vec::new();
    for resp in responses_rx {
        match &resp {
            ClientResponse::Signed { .. } => served += 1,
            ClientResponse::Verified { id, .. } => {
                verified += 1;
                if let Some(t0) = verify_stamps
                    .lock()
                    .expect("verify stamps poisoned")
                    .remove(id)
                {
                    verify_samples.push(t0.elapsed());
                }
            }
            ClientResponse::Summary { .. } => {}
        }
        write_frame(&mut client_out, &resp)?;
    }

    let (outcome, _metrics, sign_transport) = mesh
        .join()
        .map_err(|_| proto("signing mesh thread panicked"))??;
    reader
        .join()
        .map_err(|_| proto("client reader thread panicked"))?;
    gateway_worker
        .join()
        .map_err(|_| proto("gateway worker thread panicked"))?;
    signed_forwarder
        .join()
        .map_err(|_| proto("signed forwarder thread panicked"))?;

    let info = outcome
        .ready
        .ok_or_else(|| proto("front-end finished without Ready info"))?;
    let latencies: Vec<std::time::Duration> = outcome.mux.latencies.values().copied().collect();
    // Deployment-wide socket counters: every player's DKG-mesh view
    // (shipped inside Ready) plus this process's signing-mesh view.
    let mut transport = info.dkg_transport;
    transport.absorb(&sign_transport);
    write_frame(
        &mut client_out,
        &ClientResponse::Summary {
            public_key: info.public_key,
            dkg_metrics: info.dkg_metrics,
            high_water: outcome.mux.high_water as u64,
            served,
            verified,
            sign_latency: LatencySummary::from_samples(&latencies),
            verify_latency: LatencySummary::from_samples(&verify_samples),
            transport,
        },
    )?;
    Ok(())
}

/// Finds a block of `span` consecutive free loopback ports and returns
/// its first port. Best-effort (the ports are released again before the
/// children bind them), which is fine for a single-machine smoke run.
pub fn free_port_block(span: u16) -> Result<u16, ServiceError> {
    for _ in 0..64 {
        let probe = TcpListener::bind(("127.0.0.1", 0))?;
        let base = probe.local_addr()?.port();
        drop(probe);
        if base > u16::MAX - span - 2 {
            continue;
        }
        let held: Vec<TcpListener> = (base..base + span)
            .map_while(|p| TcpListener::bind(("127.0.0.1", p)).ok())
            .collect();
        if held.len() == span as usize {
            return Ok(base);
        }
    }
    Err(proto("no free loopback port block found"))
}

fn wait_ok(mut child: Child, what: &str) -> Result<(), ServiceError> {
    let status = child.wait()?;
    if status.success() {
        Ok(())
    } else {
        Err(proto(format!("{} exited with {}", what, status)))
    }
}

/// The multi-process smoke gate. Spawns `n` player processes and one
/// front-end (children of the current executable), replays the same DKG
/// in-process over a reliable [`borndist_net::ChannelTransport`], then:
///
/// * pushes `requests` signing requests through the client socket and
///   verifies every signature against the *reference* public key;
/// * pushes a mixed valid/forged batch of [`ClientRequest::Verify`]
///   frames and asserts the gateway's verdicts match ground truth;
/// * asserts the deployment's merged DKG metrics are byte-identical to
///   the in-process reference ([`borndist_net::Metrics::same_traffic`]);
/// * asserts the backpressure high-water mark respected
///   `max_in_flight`, and that the summary's signing-latency
///   percentiles cover every served request.
pub fn run_smoke(top: &Topology, requests: u64) -> Result<(), ServiceError> {
    let n = top.params.n as PlayerId;
    let scheme = ThresholdScheme::new(&top.domain);

    // In-process reference run: same protocol, same seed, in one
    // process over threaded channels.
    let (km_ref, metrics_ref) = scheme
        .keygen_session(
            top.params,
            &BTreeMap::new(),
            top.seed,
            &TransportKind::Channel(DeliveryPolicy::reliable()),
        )
        .map_err(|e| proto(format!("reference DKG failed: {}", e)))?;

    let exe = std::env::current_exe()?;
    let domain = String::from_utf8(top.domain.clone()).map_err(|_| proto("non-UTF-8 domain"))?;
    let common = [
        ("--n", top.params.n.to_string()),
        ("--t", top.params.t.to_string()),
        ("--seed", top.seed.to_string()),
        ("--domain", domain),
        ("--dkg-base", top.dkg_base.to_string()),
        ("--sign-base", top.sign_base.to_string()),
        ("--max-in-flight", top.max_in_flight.to_string()),
        ("--transport", top.transport.flag().to_string()),
    ];
    let spawn = |mode: &str, extra: &[(&str, String)]| -> Result<Child, ServiceError> {
        let mut cmd = Command::new(&exe);
        cmd.arg(mode)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        for (k, v) in common.iter().chain(extra) {
            cmd.arg(k).arg(v);
        }
        Ok(cmd.spawn()?)
    };

    let players: Vec<Child> = (1..=n)
        .map(|id| spawn("player", &[("--id", id.to_string())]))
        .collect::<Result<_, _>>()?;
    let mut frontend = spawn("frontend", &[("--client-port", "0".into())])?;

    // Learn the client port from the front-end's stdout.
    let mut fe_stdout = BufReader::new(frontend.stdout.take().expect("piped stdout"));
    let mut line = String::new();
    fe_stdout.read_line(&mut line)?;
    let port: u16 = line
        .trim()
        .strip_prefix("CLIENT_PORT ")
        .and_then(|p| p.parse().ok())
        .ok_or_else(|| proto(format!("bad front-end banner: {:?}", line)))?;

    let mut client = TcpStream::connect(("127.0.0.1", port))?;
    let mut client_in = client.try_clone()?;

    // Verification traffic for the gateway: `verify_count` signatures
    // from two aggregate authorities, a few of them forged (signature
    // over a different message than the one submitted).
    let agg_scheme = AggregateScheme::new(&top.domain);
    let mut agg_rng = StdRng::seed_from_u64(top.seed.wrapping_mul(0x9e37_79b9));
    let agg_params = borndist_shamir::ThresholdParams::new(1, 4)
        .map_err(|e| proto(format!("bad aggregate params: {}", e)))?;
    let authorities: Vec<_> = (0..2)
        .map(|_| agg_scheme.dealer_keygen(agg_params, &mut agg_rng))
        .collect();
    let verify_count = 24u64;
    let forged: &[u64] = &[3, 17];
    let agg_sign = |pk: &_, km: &borndist_core::ro::KeyMaterial, msg: &[u8]| {
        let partials: Vec<_> = (1..=2u32)
            .map(|j| agg_scheme.share_sign(pk, &km.shares[&j], msg))
            .collect();
        agg_scheme.combine(&agg_params, &partials).expect("combine")
    };

    // Pipeline all signing and verification requests, then collect both
    // response streams (they interleave arbitrarily).
    for id in 0..requests {
        write_frame(
            &mut client,
            &ClientRequest::Sign {
                id,
                msg: format!("smoke request {}", id).into_bytes(),
            },
        )?;
    }
    for id in 0..verify_count {
        let (pk, km) = &authorities[id as usize % authorities.len()];
        let msg = format!("smoke verify {}", id).into_bytes();
        let sig = if forged.contains(&id) {
            agg_sign(pk, km, b"forged smoke payload")
        } else {
            agg_sign(pk, km, &msg)
        };
        write_frame(
            &mut client,
            &ClientRequest::Verify {
                id,
                epoch: 0,
                pk: pk.clone(),
                msg,
                sig,
            },
        )?;
    }
    let mut signatures = BTreeMap::new();
    let mut verdicts = BTreeMap::new();
    while signatures.len() < requests as usize || verdicts.len() < verify_count as usize {
        match read_frame::<ClientResponse, _>(&mut client_in)? {
            ClientResponse::Signed { id, sig } => {
                signatures.insert(id, sig);
            }
            ClientResponse::Verified { id, valid, .. } => {
                verdicts.insert(id, valid);
            }
            ClientResponse::Summary { .. } => return Err(proto("Summary before Shutdown")),
        }
    }
    for (id, sig) in &signatures {
        let msg = format!("smoke request {}", id).into_bytes();
        if !scheme.verify(&km_ref.public_key, &msg, sig) {
            return Err(proto(format!("request {} signature invalid", id)));
        }
    }
    for (id, valid) in &verdicts {
        if *valid == forged.contains(id) {
            return Err(proto(format!(
                "gateway misjudged verify request {}: said {}",
                id, valid
            )));
        }
    }

    write_frame(&mut client, &ClientRequest::Shutdown)?;
    let summary = read_frame::<ClientResponse, _>(&mut client_in)?;
    let ClientResponse::Summary {
        public_key,
        dkg_metrics,
        high_water,
        served,
        verified,
        sign_latency,
        verify_latency,
        transport,
    } = summary
    else {
        return Err(proto("expected Summary after Shutdown"));
    };

    if public_key != km_ref.public_key {
        return Err(proto("deployment public key differs from reference"));
    }
    if !dkg_metrics.same_traffic(&metrics_ref) {
        return Err(proto(format!(
            "DKG metrics parity broken: tcp {:?} vs channel {:?}",
            dkg_metrics, metrics_ref
        )));
    }
    if high_water as usize > top.max_in_flight {
        return Err(proto(format!(
            "backpressure violated: high water {} > bound {}",
            high_water, top.max_in_flight
        )));
    }
    if served != requests {
        return Err(proto(format!("served {} of {} requests", served, requests)));
    }
    if verified != verify_count {
        return Err(proto(format!(
            "gateway answered {} of {} verify requests",
            verified, verify_count
        )));
    }
    if sign_latency.count != served {
        return Err(proto(format!(
            "latency summary covers {} of {} served requests",
            sign_latency.count, served
        )));
    }
    if verify_latency.count != verified {
        return Err(proto(format!(
            "verify latency summary covers {} of {} answered requests",
            verify_latency.count, verified
        )));
    }
    // Socket counters must show a real deployment: every process held
    // connections and moved frames. (Partial-read resumptions are
    // workload-dependent — loopback frequently delivers whole frames —
    // so they are reported, not gated.)
    if transport.connections_high_water == 0
        || transport.frames_in == 0
        || transport.frames_out == 0
    {
        return Err(proto(format!(
            "transport counters empty: {:?} (engine {})",
            transport,
            top.transport.flag()
        )));
    }

    for (i, child) in players.into_iter().enumerate() {
        wait_ok(child, &format!("player {}", i + 1))?;
    }
    wait_ok(frontend, "frontend")?;

    println!(
        "SMOKE OK ({}): {} requests signed, {} verified by {} processes; DKG parity {} msgs / {} bytes; high water {} <= {}; sign p50/p99 {:?}/{:?}; verify p50/p99 {:?}/{:?}; sockets hw {} frames {}/{} resumptions {}",
        top.transport.flag(),
        requests,
        verified,
        n + 1,
        dkg_metrics.messages,
        dkg_metrics.bytes,
        high_water,
        top.max_in_flight,
        sign_latency.p50,
        sign_latency.p99,
        verify_latency.p50,
        verify_latency.p99,
        transport.connections_high_water,
        transport.frames_in,
        transport.frames_out,
        transport.partial_read_resumptions,
    );
    Ok(())
}
