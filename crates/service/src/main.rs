//! `borndist-service` — the threshold-signing daemon.
//!
//! ```text
//! borndist-service player   --id 1 --n 4 --t 1 --seed 7 --domain demo \
//!                           --dkg-base 9000 --sign-base 9100 --max-in-flight 8
//! borndist-service frontend --n 4 --t 1 --seed 7 --domain demo \
//!                           --dkg-base 9000 --sign-base 9100 --max-in-flight 8 \
//!                           --client-port 9200
//! borndist-service smoke    --n 4 --t 1 --requests 100 --transport reactor
//! ```
//!
//! `--transport` picks the mesh socket engine for every process:
//! `tcp` (thread-per-peer, the default) or `reactor` (one poll loop
//! per process).
//!
//! `player` and `frontend` are the long-running deployment processes;
//! `smoke` spawns a whole deployment (players + front-end as child
//! processes of itself) and gates on signature validity plus DKG
//! metrics byte-parity with an in-process reference run.

use borndist_service::daemon::{free_port_block, run_frontend, run_player, run_smoke};
use borndist_service::{MeshTransport, Topology};
use borndist_shamir::ThresholdParams;
use std::collections::BTreeMap;
use std::net::TcpListener;
use std::process::ExitCode;

struct Args(BTreeMap<String, String>);

impl Args {
    fn parse(raw: &[String]) -> Result<Self, String> {
        let mut map = BTreeMap::new();
        let mut it = raw.iter();
        while let Some(key) = it.next() {
            let key = key
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got {:?}", key))?;
            let value = it
                .next()
                .ok_or_else(|| format!("--{} needs a value", key))?;
            map.insert(key.to_string(), value.clone());
        }
        Ok(Args(map))
    }

    fn get<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        self.0
            .get(key)
            .ok_or_else(|| format!("missing --{}", key))?
            .parse()
            .map_err(|_| format!("bad value for --{}", key))
    }

    fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.0.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad value for --{}", key)),
        }
    }
}

fn topology(args: &Args) -> Result<Topology, String> {
    let t: usize = args.get("t")?;
    let n: usize = args.get("n")?;
    let params = ThresholdParams::new(t, n).map_err(|e| format!("bad (t, n): {:?}", e))?;
    Ok(Topology {
        params,
        seed: args.get_or("seed", 7)?,
        domain: args
            .get_or("domain", "borndist-service".to_string())?
            .into_bytes(),
        dkg_base: args.get_or("dkg-base", 0)?,
        sign_base: args.get_or("sign-base", 0)?,
        max_in_flight: args.get_or("max-in-flight", 8)?,
        transport: args.get_or("transport", MeshTransport::Threaded)?,
    })
}

fn run() -> Result<(), String> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((mode, rest)) = raw.split_first() else {
        return Err("usage: borndist-service <player|frontend|smoke> --flags ...".into());
    };
    let args = Args::parse(rest)?;

    match mode.as_str() {
        "player" => {
            let top = topology(&args)?;
            let id: u32 = args.get("id")?;
            let served = run_player(&top, id).map_err(|e| e.to_string())?;
            println!("player {} done: {} sessions observed", id, served);
            Ok(())
        }
        "frontend" => {
            let top = topology(&args)?;
            let port: u16 = args.get_or("client-port", 0)?;
            let listener =
                TcpListener::bind(("127.0.0.1", port)).map_err(|e| format!("bind: {}", e))?;
            run_frontend(&top, listener).map_err(|e| e.to_string())
        }
        "smoke" => {
            let mut top = topology(&args)?;
            let requests: u64 = args.get_or("requests", 100)?;
            if top.dkg_base == 0 || top.sign_base == 0 {
                // One contiguous block: n DKG ports, then n+1 signing
                // ports (ids are 1-based offsets within each base).
                let n = top.params.n as u16;
                let base = free_port_block(2 * n + 3).map_err(|e| e.to_string())?;
                top.dkg_base = base;
                top.sign_base = base + n + 1;
            }
            run_smoke(&top, requests).map_err(|e| e.to_string())
        }
        other => Err(format!("unknown mode {:?}", other)),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("borndist-service: {}", e);
            ExitCode::FAILURE
        }
    }
}
