//! The full daemon lifecycle across OS processes: `smoke` mode spawns
//! 4 player processes plus the front-end, pushes 120 concurrent
//! signing requests through the client socket, and gates on
//! signature validity, DKG metrics byte-parity with an in-process
//! `ChannelTransport` reference run, and the backpressure bound.
//!
//! Release-only: debug-profile pairings make the 120-request run take
//! minutes; CI runs this via `cargo test --release -p borndist_service`.

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "multi-process smoke needs release-profile pairings; run with --release"
)]
fn multi_process_daemon_smoke() {
    let exe = env!("CARGO_BIN_EXE_borndist-service");
    let output = std::process::Command::new(exe)
        .args([
            "smoke",
            "--n",
            "4",
            "--t",
            "1",
            "--seed",
            "7",
            "--requests",
            "120",
            "--max-in-flight",
            "8",
        ])
        .output()
        .expect("smoke mode spawns");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "smoke failed ({}): stdout={} stderr={}",
        output.status,
        stdout,
        String::from_utf8_lossy(&output.stderr),
    );
    assert!(stdout.contains("SMOKE OK"), "missing gate line: {}", stdout);
}
