//! # borndist-parallel
//!
//! A zero-dependency multi-core execution layer for the workspace's
//! embarrassingly parallel hot paths (DESIGN.md §2 "Parallel
//! execution"): batch verification shards, MSM window accumulation,
//! batched affine normalization, fixed-base table construction, and
//! per-dealing DKG share checks.
//!
//! ## Design
//!
//! * **Scoped threads, no pool state.** Work is fanned out with
//!   [`std::thread::scope`]: threads are spawned per call and joined
//!   before the call returns, so closures may borrow from the caller's
//!   stack and no global executor, channel, or shutdown protocol exists.
//!   The spawn cost (~10 µs per thread on Linux) is noise against the
//!   millisecond-scale pairing/MSM workloads this crate shards; a
//!   persistent pool (or a rayon shim) would buy nothing but state.
//! * **Determinism by construction.** [`par_map`] and [`par_chunks`]
//!   split their input into *contiguous, ordered* chunks and return
//!   results in input order. Every call site in the workspace either
//!   maps a pure per-item function (identical results trivially) or
//!   folds chunk results with exact field arithmetic (identical values
//!   by associativity, hence identical canonical encodings), so outputs
//!   are **bit-identical for every thread count** — the
//!   `tests/parallel_invariance.rs` suite enforces this.
//! * **No nested oversubscription.** While a worker closure runs, the
//!   calling thread's parallelism is forced to [`Parallelism::Sequential`]
//!   (thread-local), so a parallel MSM inside a parallel batch shard
//!   does not spawn threads of its own.
//!
//! ## Configuration
//!
//! The effective setting is resolved in order:
//!
//! 1. a scoped [`with_parallelism`] override (thread-local; what the
//!    tests and benches use),
//! 2. the process-wide [`set_parallelism`] value,
//! 3. the `BORNDIST_THREADS` environment variable (`1` forces
//!    [`Parallelism::Sequential`], `k` means [`Parallelism::Threads`]`(k)`,
//!    `0`/`auto` mean [`Parallelism::Auto`]),
//! 4. [`Parallelism::Auto`] ([`std::thread::available_parallelism`]).

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// How many worker threads the parallel primitives may use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Parallelism {
    /// Degrade every primitive to plain sequential iteration (the
    /// reference behavior; bit-identical to every other setting).
    Sequential,
    /// Use up to this many threads (including the calling thread).
    /// `Threads(0)` and `Threads(1)` behave like [`Self::Sequential`].
    Threads(usize),
    /// Use [`std::thread::available_parallelism`] threads.
    Auto,
}

impl Parallelism {
    /// The thread budget this setting resolves to (always ≥ 1).
    pub fn threads(self) -> usize {
        match self {
            Parallelism::Sequential => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }

    /// Parses the `BORNDIST_THREADS` environment variable; `None` when
    /// unset or empty.
    ///
    /// # Panics
    ///
    /// Panics on an unparseable non-empty value. Silently falling back
    /// to [`Parallelism::Auto`] would be invisible — results are
    /// bit-identical at every thread count by design, so a typo'd
    /// `BORNDIST_THREADS=sequential` would otherwise *appear* to work
    /// while testing the wrong configuration.
    pub fn from_env() -> Option<Parallelism> {
        let raw = std::env::var("BORNDIST_THREADS").ok()?;
        match raw.trim() {
            "" => None,
            "auto" | "0" => Some(Parallelism::Auto),
            "1" => Some(Parallelism::Sequential),
            n => match n.parse::<usize>() {
                Ok(k) => Some(Parallelism::Threads(k)),
                Err(_) => panic!(
                    "BORNDIST_THREADS={:?} is not a thread count (expected a number, \"auto\", or unset)",
                    raw
                ),
            },
        }
    }
}

// Process-wide setting, encoded so reads are one atomic load:
// 0 = unset (fall through to the environment), 1 = Sequential,
// 2 = Auto, n+3 = Threads(n).
static GLOBAL: AtomicUsize = AtomicUsize::new(0);
static ENV_DEFAULT: OnceLock<Option<Parallelism>> = OnceLock::new();

fn encode(p: Parallelism) -> usize {
    match p {
        Parallelism::Sequential => 1,
        Parallelism::Auto => 2,
        Parallelism::Threads(n) => n.saturating_add(3),
    }
}

fn decode(v: usize) -> Option<Parallelism> {
    match v {
        0 => None,
        1 => Some(Parallelism::Sequential),
        2 => Some(Parallelism::Auto),
        n => Some(Parallelism::Threads(n - 3)),
    }
}

thread_local! {
    static OVERRIDE: Cell<Option<Parallelism>> = const { Cell::new(None) };
}

/// Sets the process-wide parallelism (overridden per-thread by
/// [`with_parallelism`], and itself overriding `BORNDIST_THREADS`).
pub fn set_parallelism(p: Parallelism) {
    GLOBAL.store(encode(p), Ordering::Relaxed);
}

/// The parallelism in effect on the calling thread.
pub fn current() -> Parallelism {
    if let Some(p) = OVERRIDE.with(Cell::get) {
        return p;
    }
    if let Some(p) = decode(GLOBAL.load(Ordering::Relaxed)) {
        return p;
    }
    ENV_DEFAULT
        .get_or_init(Parallelism::from_env)
        .unwrap_or(Parallelism::Auto)
}

/// The thread budget in effect on the calling thread (always ≥ 1).
pub fn current_threads() -> usize {
    current().threads()
}

/// Runs `f` with `p` as the calling thread's parallelism, restoring the
/// previous setting afterwards (also on unwind). This is the race-free
/// way to pin a setting in tests and benches.
pub fn with_parallelism<R>(p: Parallelism, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Parallelism>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _guard = Restore(OVERRIDE.with(|c| c.replace(Some(p))));
    f()
}

/// Balanced contiguous split points: `k` chunks covering `0..len` whose
/// sizes differ by at most one. This is the single source of truth for
/// how every primitive (and the pairing crate's Miller-loop sharding)
/// splits work, so the contiguity/balance invariant cannot drift
/// between call sites.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn chunk_bounds(len: usize, k: usize) -> Vec<(usize, usize)> {
    assert!(k > 0, "chunk_bounds requires at least one chunk");
    let base = len / k;
    let rem = len % k;
    let mut bounds = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let end = start + base + usize::from(i < rem);
        bounds.push((start, end));
        start = end;
    }
    bounds
}

/// Fans `f` out over balanced contiguous index ranges of `0..len` — at
/// most [`current_threads`] ranges, never smaller than `min_chunk` —
/// returning results in range order. The shared spawn/join body behind
/// [`par_chunks`] and [`par_map_indexed`]; degrades to one call over
/// the full range when the budget is a single thread.
fn par_ranges<R, F>(len: usize, min_chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, usize) -> R + Sync,
{
    let min_chunk = min_chunk.max(1);
    let k = current_threads()
        .min(len / min_chunk)
        .max(1)
        .min(len.max(1));
    if k <= 1 {
        return vec![f(0, len)];
    }
    let bounds = chunk_bounds(len, k);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = bounds[1..]
            .iter()
            .map(|&(a, b)| {
                scope.spawn(move || with_parallelism(Parallelism::Sequential, || f(a, b)))
            })
            .collect();
        let (a0, b0) = bounds[0];
        let first = with_parallelism(Parallelism::Sequential, || f(a0, b0));
        let mut out = Vec::with_capacity(k);
        out.push(first);
        for h in handles {
            // A panicking worker propagates: matches the sequential
            // behavior of the same panic occurring inline.
            out.push(h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)));
        }
        out
    })
}

/// Applies `f` to `k` balanced contiguous chunks of `items` — at most
/// [`current_threads`] of them, and never smaller than `min_chunk`
/// items — returning the chunk results **in input order**. Degrades to
/// one sequential call when the budget is 1 thread (or the input is too
/// small to split), so results never depend on the thread count for
/// per-chunk functions whose chunked evaluation is exact (see the
/// module docs).
///
/// Worker closures run with their thread's parallelism forced to
/// [`Parallelism::Sequential`], so nested primitives do not spawn.
pub fn par_chunks<T, R, F>(items: &[T], min_chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    par_ranges(items.len(), min_chunk, |a, b| f(&items[a..b]))
}

/// Maps `f` over `items` on up to [`current_threads`] threads, returning
/// the results in input order. The per-item function must be pure for
/// result determinism (every call site in this workspace is).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items, |_, t| f(t))
}

/// [`par_map`] whose closure also receives the item's index — for call
/// sites that combine each item with positional companion data (e.g.
/// the batching weight `ρ_i`) without allocating an index vector.
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if current_threads() <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunked = par_ranges(items.len(), 1, |a, b| {
        items[a..b]
            .iter()
            .enumerate()
            .map(|(j, t)| f(a + j, t))
            .collect::<Vec<R>>()
    });
    let mut out = Vec::with_capacity(items.len());
    for c in chunked {
        out.extend(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_resolution() {
        assert_eq!(Parallelism::Sequential.threads(), 1);
        assert_eq!(Parallelism::Threads(0).threads(), 1);
        assert_eq!(Parallelism::Threads(7).threads(), 7);
        assert!(Parallelism::Auto.threads() >= 1);
    }

    #[test]
    fn chunk_bounds_are_balanced_and_cover() {
        for (len, k) in [(10usize, 3usize), (7, 7), (16, 4), (5, 2), (1, 1)] {
            let b = chunk_bounds(len, k);
            assert_eq!(b.len(), k);
            assert_eq!(b[0].0, 0);
            assert_eq!(b[k - 1].1, len);
            for w in b.windows(2) {
                assert_eq!(w[0].1, w[1].0);
            }
            let sizes: Vec<usize> = b.iter().map(|(a, c)| c - a).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "unbalanced split {:?}", sizes);
        }
    }

    #[test]
    fn par_map_preserves_order_for_every_thread_count() {
        let items: Vec<u64> = (0..101).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for p in [
            Parallelism::Sequential,
            Parallelism::Threads(2),
            Parallelism::Threads(7),
            Parallelism::Threads(200),
            Parallelism::Auto,
        ] {
            let got = with_parallelism(p, || par_map(&items, |x| x * x + 1));
            assert_eq!(got, expect, "under {:?}", p);
        }
    }

    #[test]
    fn par_chunks_respects_min_chunk_and_order() {
        let items: Vec<usize> = (0..40).collect();
        let sums = with_parallelism(Parallelism::Threads(8), || {
            par_chunks(&items, 10, |c| c.iter().sum::<usize>())
        });
        // 40 items / min_chunk 10 caps the fan-out at 4 chunks.
        assert_eq!(sums.len(), 4);
        assert_eq!(sums.iter().sum::<usize>(), items.iter().sum::<usize>());
        // Too small to split: one chunk regardless of budget.
        let one = with_parallelism(Parallelism::Threads(8), || {
            par_chunks(&items[..5], 10, |c| c.len())
        });
        assert_eq!(one, vec![5]);
        // Empty input: one call on the empty slice (mirrors sequential).
        let empty = par_chunks(&items[..0], 1, |c| c.len());
        assert_eq!(empty, vec![0]);
    }

    #[test]
    fn workers_run_sequentially_inside() {
        let items = [0usize; 6];
        let nested = with_parallelism(Parallelism::Threads(3), || {
            par_chunks(&items, 1, |_| current_threads())
        });
        assert!(
            nested.iter().all(|&t| t == 1),
            "nested parallelism must be suppressed, got {:?}",
            nested
        );
    }

    #[test]
    fn with_parallelism_restores_on_exit_and_unwind() {
        // An outer override pins this thread's baseline, so the test is
        // immune to concurrent set_parallelism calls from sibling tests
        // (the thread-local layer always wins over the global).
        with_parallelism(Parallelism::Threads(4), || {
            with_parallelism(Parallelism::Threads(5), || {
                assert_eq!(current(), Parallelism::Threads(5));
                with_parallelism(Parallelism::Sequential, || {
                    assert_eq!(current(), Parallelism::Sequential);
                });
                assert_eq!(current(), Parallelism::Threads(5));
            });
            assert_eq!(current(), Parallelism::Threads(4));
            let unwound = std::panic::catch_unwind(|| {
                with_parallelism(Parallelism::Threads(9), || panic!("boom"))
            });
            assert!(unwound.is_err());
            assert_eq!(current(), Parallelism::Threads(4));
        });
    }

    #[test]
    fn global_setting_is_visible_until_overridden() {
        // Restores the process-wide state on exit; sibling tests that
        // read current() do so under their own thread-local overrides,
        // which always take precedence over this temporary global.
        let prior = GLOBAL.load(Ordering::Relaxed);
        set_parallelism(Parallelism::Threads(3));
        let seen = std::thread::spawn(current).join().unwrap();
        assert_eq!(seen, Parallelism::Threads(3));
        with_parallelism(Parallelism::Sequential, || {
            assert_eq!(current(), Parallelism::Sequential);
        });
        GLOBAL.store(prior, Ordering::Relaxed);
    }

    #[test]
    fn par_map_indexed_passes_true_indices() {
        let items: Vec<u64> = (100..164).collect();
        for p in [
            Parallelism::Sequential,
            Parallelism::Threads(3),
            Parallelism::Threads(64),
        ] {
            let got = with_parallelism(p, || par_map_indexed(&items, |i, x| (i, *x)));
            for (i, (idx, x)) in got.iter().enumerate() {
                assert_eq!(*idx, i, "index under {:?}", p);
                assert_eq!(*x, items[i]);
            }
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<usize> = (0..8).collect();
        let r = std::panic::catch_unwind(|| {
            with_parallelism(Parallelism::Threads(4), || {
                par_map(&items, |x| {
                    assert!(*x != 6, "injected");
                    *x
                })
            })
        });
        assert!(r.is_err());
    }
}
