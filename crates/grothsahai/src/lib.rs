//! # borndist-grothsahai
//!
//! The slice of the Groth–Sahai proof system (Eurocrypt 2008, SXDH
//! instantiation) needed by the paper's standard-model construction (§4,
//! Appendix A):
//!
//! * commitments to `G`-elements under a two-vector CRS `(u₁, u₂) ∈ (G²)²`;
//! * NIWI proofs for **linear pairing-product equations**
//!   `Π e(X_i, Â_i) = t_T` — two `Ĝ` elements per equation;
//! * perfect **randomization** of commitment/proof pairs (Belenkiy et al.);
//! * **linear combination** of proofs for the same constants — the
//!   homomorphism that lets the threshold scheme Lagrange-interpolate
//!   Groth–Sahai proofs in the exponent;
//! * **trapdoor extraction** on binding CRSs (used in tests to play the
//!   reduction's role).
//!
//! On a *binding* CRS (`u₂ = u₁^ξ`) commitments are perfectly binding and
//! extractable; on a *hiding* CRS (independent vectors) they are perfectly
//! hiding and proofs are witness-indistinguishable. Under SXDH the two CRS
//! distributions are computationally indistinguishable — that dichotomy is
//! the engine of the §4 security proof, where the per-message CRS
//! `(f, f_M)` is binding exactly on the forgery message.

use borndist_pairing::{
    msm, multi_pairing_mixed, Fr, G1Affine, G1Projective, G2Affine, G2Prepared, G2Projective,
};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// A Groth–Sahai common reference string: two vectors of `G²`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Crs {
    /// First vector `u₁ = (u₁₁, u₁₂)`.
    pub u1: (G1Affine, G1Affine),
    /// Second vector `u₂ = (u₂₁, u₂₂)`.
    pub u2: (G1Affine, G1Affine),
}

/// Extraction trapdoor for a binding CRS: `β = log_{u₁₁}(u₁₂)`.
#[derive(Clone, Copy, Debug)]
pub struct ExtractKey {
    beta: Fr,
}

/// A commitment `C = (1, X)·u₁^{ν₁}·u₂^{ν₂} ∈ G²`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Commitment {
    /// First coordinate.
    pub c1: G1Affine,
    /// Second coordinate (carries the committed value).
    pub c2: G1Affine,
}

/// Commitment randomness `(ν₁, ν₂)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Randomness {
    /// Exponent on `u₁`.
    pub nu1: Fr,
    /// Exponent on `u₂`.
    pub nu2: Fr,
}

/// A NIWI proof for one linear pairing-product equation: `(π̂₁, π̂₂) ∈ Ĝ²`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Proof {
    /// Component paired with `u₁`.
    pub pi1: G2Affine,
    /// Component paired with `u₂`.
    pub pi2: G2Affine,
}

impl Crs {
    /// Samples a perfectly *hiding* CRS (linearly independent vectors).
    pub fn hiding<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        Crs {
            u1: (
                G1Projective::random(rng).to_affine(),
                G1Projective::random(rng).to_affine(),
            ),
            u2: (
                G1Projective::random(rng).to_affine(),
                G1Projective::random(rng).to_affine(),
            ),
        }
    }

    /// Samples a perfectly *binding* CRS (`u₂ = u₁^ξ`) together with its
    /// extraction trapdoor.
    pub fn binding<R: RngCore + ?Sized>(rng: &mut R) -> (Self, ExtractKey) {
        let g = G1Projective::random(rng);
        let beta = Fr::random(rng);
        let xi = Fr::random(rng);
        let u11 = g;
        let u12 = g.mul(&beta);
        (
            Crs {
                u1: (u11.to_affine(), u12.to_affine()),
                u2: (u11.mul(&xi).to_affine(), u12.mul(&xi).to_affine()),
            },
            ExtractKey { beta },
        )
    }

    /// Assembles a CRS from externally derived vectors (e.g. the §4
    /// per-message CRS `(f, f_M)`).
    pub fn from_vectors(u1: (G1Affine, G1Affine), u2: (G1Affine, G1Affine)) -> Self {
        Crs { u1, u2 }
    }

    /// Commits to `x` with fresh randomness.
    pub fn commit<R: RngCore + ?Sized>(
        &self,
        x: &G1Projective,
        rng: &mut R,
    ) -> (Commitment, Randomness) {
        let r = Randomness {
            nu1: Fr::random(rng),
            nu2: Fr::random(rng),
        };
        (self.commit_with(x, &r), r)
    }

    /// Commits with explicit randomness.
    pub fn commit_with(&self, x: &G1Projective, r: &Randomness) -> Commitment {
        let c1 = msm(&[self.u1.0, self.u2.0], &[r.nu1, r.nu2]);
        let c2 = msm(&[self.u1.1, self.u2.1], &[r.nu1, r.nu2]) + *x;
        Commitment {
            c1: c1.to_affine(),
            c2: c2.to_affine(),
        }
    }
}

impl ExtractKey {
    /// Opens a commitment made on the matching binding CRS.
    pub fn extract(&self, c: &Commitment) -> G1Projective {
        // C = (u11^s, X·u12^s) with u12 = u11^β, so X = C2 / C1^β.
        c.c2.to_projective() - c.c1.mul(&self.beta)
    }
}

/// Builds the proof `π̂_j = Π_i Â_i^{-ν_{i,j}}` for the equation
/// `Π e(X_i, Â_i) = t_T`, given the commitment randomness of each
/// committed variable (`constants[i]` pairs with variable `i`).
///
/// # Panics
///
/// Panics if `constants` and `rands` lengths differ.
pub fn prove(constants: &[G2Affine], rands: &[Randomness]) -> Proof {
    assert_eq!(constants.len(), rands.len(), "one randomness per variable");
    let neg_nu1: Vec<Fr> = rands.iter().map(|r| -r.nu1).collect();
    let neg_nu2: Vec<Fr> = rands.iter().map(|r| -r.nu2).collect();
    Proof {
        pi1: msm(constants, &neg_nu1).to_affine(),
        pi2: msm(constants, &neg_nu2).to_affine(),
    }
}

/// Verifies a proof for `Π e(X_i, Â_i)·Π e(P_j, Q̂_j) = 1`, where the
/// `X_i` are committed and the *extra pairs* `(P_j, Q̂_j)` are public
/// vector/constant products absorbing the target (`P_j ∈ G²`).
///
/// Concretely, for both coordinates `m ∈ {1, 2}` it checks
/// `Π_i e(C_i[m], Â_i) · e(u₁[m], π̂₁) · e(u₂[m], π̂₂) · Π_j e(P_j[m], Q̂_j) = 1`.
pub fn verify(
    crs: &Crs,
    constants: &[G2Affine],
    commitments: &[Commitment],
    extra: &[((G1Affine, G1Affine), G2Affine)],
    proof: &Proof,
) -> bool {
    verify_inner(
        crs,
        ConstantRefs::Live(constants),
        commitments,
        extra,
        proof,
    )
}

/// [`verify`] with the equation constants `Â_i` preprocessed
/// ([`G2Prepared`]): the constants are the long-lived generators
/// `(ĝ_z, ĝ_r)` in every use by the §4 scheme, so their Miller line
/// coefficients are cached at scheme setup while the per-proof elements
/// (`π̂₁`, `π̂₂`, targets) stay live. Verdict-equivalent to [`verify`]
/// (property-tested by the standard-model suites).
pub fn verify_prepared(
    crs: &Crs,
    constants: &[&G2Prepared],
    commitments: &[Commitment],
    extra: &[((G1Affine, G1Affine), G2Affine)],
    proof: &Proof,
) -> bool {
    verify_inner(
        crs,
        ConstantRefs::Prepared(constants),
        commitments,
        extra,
        proof,
    )
}

/// Equation constants in live or prepared form — [`verify`] and
/// [`verify_prepared`] share one body so the two-equation structure can
/// never diverge between them.
enum ConstantRefs<'a> {
    Live(&'a [G2Affine]),
    Prepared(&'a [&'a G2Prepared]),
}

impl ConstantRefs<'_> {
    fn len(&self) -> usize {
        match self {
            ConstantRefs::Live(c) => c.len(),
            ConstantRefs::Prepared(c) => c.len(),
        }
    }
}

fn verify_inner(
    crs: &Crs,
    constants: ConstantRefs<'_>,
    commitments: &[Commitment],
    extra: &[((G1Affine, G1Affine), G2Affine)],
    proof: &Proof,
) -> bool {
    if constants.len() != commitments.len() {
        return false;
    }
    fn coord(c: &Commitment, m: usize) -> &G1Affine {
        if m == 0 {
            &c.c1
        } else {
            &c.c2
        }
    }
    for m in 0..2usize {
        let mut pairs: Vec<(&G1Affine, &G2Affine)> = Vec::new();
        let mut prepared: Vec<(&G1Affine, &G2Prepared)> = Vec::new();
        match &constants {
            ConstantRefs::Live(cs) => {
                for (c, a) in commitments.iter().zip(cs.iter()) {
                    pairs.push((coord(c, m), a));
                }
            }
            ConstantRefs::Prepared(cs) => {
                for (c, a) in commitments.iter().zip(cs.iter()) {
                    prepared.push((coord(c, m), *a));
                }
            }
        }
        let u1m = if m == 0 { &crs.u1.0 } else { &crs.u1.1 };
        let u2m = if m == 0 { &crs.u2.0 } else { &crs.u2.1 };
        pairs.push((u1m, &proof.pi1));
        pairs.push((u2m, &proof.pi2));
        for ((p1, p2), q) in extra.iter() {
            pairs.push((if m == 0 { p1 } else { p2 }, q));
        }
        if !multi_pairing_mixed(&pairs, &prepared).is_identity() {
            return false;
        }
    }
    true
}

/// Perfectly re-randomizes a commitment/proof pair for the given
/// equation constants (Belenkiy et al.): the output is distributed as a
/// fresh commitment and proof of the same statement.
pub fn randomize<R: RngCore + ?Sized>(
    crs: &Crs,
    constants: &[G2Affine],
    commitments: &[Commitment],
    proof: &Proof,
    rng: &mut R,
) -> (Vec<Commitment>, Proof) {
    let fresh: Vec<Randomness> = (0..commitments.len())
        .map(|_| Randomness {
            nu1: Fr::random(rng),
            nu2: Fr::random(rng),
        })
        .collect();
    let new_commitments: Vec<Commitment> = commitments
        .iter()
        .zip(fresh.iter())
        .map(|(c, r)| {
            let c1 = c.c1.to_projective() + msm(&[crs.u1.0, crs.u2.0], &[r.nu1, r.nu2]);
            let c2 = c.c2.to_projective() + msm(&[crs.u1.1, crs.u2.1], &[r.nu1, r.nu2]);
            Commitment {
                c1: c1.to_affine(),
                c2: c2.to_affine(),
            }
        })
        .collect();
    let delta = prove(constants, &fresh);
    let new_proof = Proof {
        pi1: (proof.pi1.to_projective().add_affine(&delta.pi1)).to_affine(),
        pi2: (proof.pi2.to_projective().add_affine(&delta.pi2)).to_affine(),
    };
    (new_commitments, new_proof)
}

/// Linearly combines commitment/proof tuples for the *same* equation
/// constants with the given weights: the result proves the weighted
/// product statement. This is the "Lagrange interpolation of Groth–Sahai
/// proofs in the exponent" used by the §4 `Combine`.
pub fn combine_weighted(
    tuples: &[(&[Commitment], &Proof)],
    weights: &[Fr],
) -> (Vec<Commitment>, Proof) {
    assert_eq!(tuples.len(), weights.len(), "one weight per tuple");
    assert!(!tuples.is_empty(), "nothing to combine");
    let vars = tuples[0].0.len();
    let mut commitments = Vec::with_capacity(vars);
    for v in 0..vars {
        let c1s: Vec<G1Affine> = tuples.iter().map(|(cs, _)| cs[v].c1).collect();
        let c2s: Vec<G1Affine> = tuples.iter().map(|(cs, _)| cs[v].c2).collect();
        commitments.push(Commitment {
            c1: msm(&c1s, weights).to_affine(),
            c2: msm(&c2s, weights).to_affine(),
        });
    }
    let pi1s: Vec<G2Affine> = tuples.iter().map(|(_, p)| p.pi1).collect();
    let pi2s: Vec<G2Affine> = tuples.iter().map(|(_, p)| p.pi2).collect();
    let proof = Proof {
        pi1: {
            let pts: Vec<G2Projective> = pi1s.iter().map(|p| p.to_projective()).collect();
            let affs = G2Projective::batch_to_affine(&pts);
            borndist_pairing::msm(&affs, weights).to_affine()
        },
        pi2: {
            let pts: Vec<G2Projective> = pi2s.iter().map(|p| p.to_projective()).collect();
            let affs = G2Projective::batch_to_affine(&pts);
            borndist_pairing::msm(&affs, weights).to_affine()
        },
    };
    (commitments, proof)
}

#[cfg(test)]
mod tests {
    use super::*;
    use borndist_pairing::pairing;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x95)
    }

    /// The "extra pair" part of a statement: `(P1, P2)` with its `Q̂`.
    type ExtraPair = ((G1Affine, G1Affine), G2Affine);

    /// Builds a valid statement: X1, X2 with constants Â1, Â2 and the
    /// extra pair absorbing the target, i.e.
    /// e(X1,Â1)·e(X2,Â2)·e(P,Q̂) = 1 by construction.
    fn sample_statement(r: &mut StdRng) -> (Vec<G1Projective>, Vec<G2Affine>, ExtraPair) {
        let a1 = G2Projective::random(r).to_affine();
        let a2 = G2Projective::random(r).to_affine();
        let x1 = G1Projective::random(r);
        let x2 = G1Projective::random(r);
        // extra pair: ((1, g), Q̂) with e(g, Q̂) = (e(X1,Â1)e(X2,Â2))^{-1}.
        // Build it in the exponent: X_i = g^{x_i}, Â_i = ĝ^{α_i}; pick
        // Q̂ = ĝ^{q} and g-part = g^{-(x1α1+x2α2)/q}... simpler: set the
        // extra G1 part to -(X1^{α1·...}) — we don't know dlogs. Instead
        // construct FROM scalars.
        let g = G1Projective::generator();
        let gh = G2Projective::generator();
        let (e1, e2) = (Fr::random(r), Fr::random(r));
        let (f1, f2) = (Fr::random(r), Fr::random(r));
        let a1s = gh.mul(&e1).to_affine();
        let a2s = gh.mul(&e2).to_affine();
        let x1s = g.mul(&f1);
        let x2s = g.mul(&f2);
        // e(x1s,a1s)e(x2s,a2s) = e(g,ĝ)^{f1e1+f2e2}; extra = ((1,g), ĝ^{-(f1e1+f2e2)}).
        let q = gh.mul(&(-(f1 * e1 + f2 * e2))).to_affine();
        let extra = ((G1Affine::identity(), g.to_affine()), q);
        // silence unused original randoms
        let _ = (a1, a2, x1, x2);
        (vec![x1s, x2s], vec![a1s, a2s], extra)
    }

    #[test]
    fn prove_verify_on_hiding_crs() {
        let mut r = rng();
        let crs = Crs::hiding(&mut r);
        let (xs, constants, extra) = sample_statement(&mut r);
        let committed: Vec<(Commitment, Randomness)> =
            xs.iter().map(|x| crs.commit(x, &mut r)).collect();
        let commitments: Vec<Commitment> = committed.iter().map(|(c, _)| *c).collect();
        let rands: Vec<Randomness> = committed.iter().map(|(_, r)| *r).collect();
        let proof = prove(&constants, &rands);
        assert!(verify(&crs, &constants, &commitments, &[extra], &proof));
    }

    #[test]
    fn prove_verify_on_binding_crs() {
        let mut r = rng();
        let (crs, _) = Crs::binding(&mut r);
        let (xs, constants, extra) = sample_statement(&mut r);
        let committed: Vec<(Commitment, Randomness)> =
            xs.iter().map(|x| crs.commit(x, &mut r)).collect();
        let commitments: Vec<Commitment> = committed.iter().map(|(c, _)| *c).collect();
        let rands: Vec<Randomness> = committed.iter().map(|(_, r)| *r).collect();
        let proof = prove(&constants, &rands);
        assert!(verify(&crs, &constants, &commitments, &[extra], &proof));
    }

    #[test]
    fn false_statement_rejected() {
        let mut r = rng();
        let crs = Crs::hiding(&mut r);
        let (xs, constants, extra) = sample_statement(&mut r);
        let committed: Vec<(Commitment, Randomness)> =
            xs.iter().map(|x| crs.commit(x, &mut r)).collect();
        let commitments: Vec<Commitment> = committed.iter().map(|(c, _)| *c).collect();
        let rands: Vec<Randomness> = committed.iter().map(|(_, r)| *r).collect();
        let proof = prove(&constants, &rands);
        // Tamper with the target.
        let bad_extra = (extra.0, G2Projective::random(&mut r).to_affine());
        assert!(!verify(
            &crs,
            &constants,
            &commitments,
            &[bad_extra],
            &proof
        ));
        // Tamper with a commitment.
        let mut bad = commitments.clone();
        bad[0].c2 = bad[0].c1;
        assert!(!verify(&crs, &constants, &bad, &[extra], &proof));
    }

    #[test]
    fn extraction_recovers_committed_value() {
        let mut r = rng();
        let (crs, ek) = Crs::binding(&mut r);
        let x = G1Projective::random(&mut r);
        let (c, _) = crs.commit(&x, &mut r);
        assert_eq!(ek.extract(&c), x);
    }

    #[test]
    fn hiding_commitments_perfectly_hide() {
        // On a hiding CRS, a commitment to X could open to anything: we
        // check that commitments to different values are algebraically
        // indistinguishable by checking they have identical distributions
        // under re-randomization — here we just check that two different
        // messages can yield the SAME commitment with suitable randomness
        // (perfect hiding has no test better than structure: c1 carries
        // no information about X).
        let mut r = rng();
        let crs = Crs::hiding(&mut r);
        let x = G1Projective::random(&mut r);
        let (c, _) = crs.commit(&x, &mut r);
        // c1 is independent of x by construction:
        let (c_other, _) = crs.commit(&G1Projective::identity(), &mut r);
        // Nothing to assert beyond well-formedness; both are valid points.
        assert!(c.c1.is_on_curve() && c_other.c1.is_on_curve());
    }

    #[test]
    fn randomization_preserves_validity_and_changes_representation() {
        let mut r = rng();
        let crs = Crs::hiding(&mut r);
        let (xs, constants, extra) = sample_statement(&mut r);
        let committed: Vec<(Commitment, Randomness)> =
            xs.iter().map(|x| crs.commit(x, &mut r)).collect();
        let commitments: Vec<Commitment> = committed.iter().map(|(c, _)| *c).collect();
        let rands: Vec<Randomness> = committed.iter().map(|(_, rr)| *rr).collect();
        let proof = prove(&constants, &rands);
        let (new_c, new_p) = randomize(&crs, &constants, &commitments, &proof, &mut r);
        assert_ne!(new_c[0], commitments[0]);
        assert_ne!(new_p, proof);
        assert!(verify(&crs, &constants, &new_c, &[extra], &new_p));
    }

    #[test]
    fn weighted_combination_proves_product_statement() {
        // Two proofs of e(X_j, Â)·e(g^{v_j}, Q̂) = 1 combine with weights
        // w_j into a proof for the weighted product statement.
        let mut r = rng();
        let crs = Crs::hiding(&mut r);
        let gh = G2Projective::generator();
        let g = G1Projective::generator();
        let alpha = Fr::random(&mut r);
        let a = gh.mul(&alpha).to_affine();
        // For each j: X_j = g^{x_j}, extra_j = ((1, g^{v_j}), Q̂) with
        // e(X_j, Â)·e(g^{v_j}, Q̂) = 1; with Q̂ = ĝ^{qs} this forces
        // v_j = -x_j·α/qs.
        let qs = Fr::random(&mut r);
        let q = gh.mul(&qs).to_affine();
        let make = |x_scalar: Fr, rr: &mut StdRng| {
            let x = g.mul(&x_scalar);
            let v = -(x_scalar * alpha) * qs.invert().unwrap();
            let (c, rand) = crs.commit(&x, rr);
            let proof = prove(&[a], &[rand]);
            (c, proof, v)
        };
        let (c1, p1, v1) = make(Fr::from_u64(5), &mut r);
        let (c2, p2, v2) = make(Fr::from_u64(9), &mut r);
        // Check individuals.
        let ex = |v: Fr| ((G1Affine::identity(), g.mul(&v).to_affine()), q);
        assert!(verify(&crs, &[a], &[c1], &[ex(v1)], &p1));
        assert!(verify(&crs, &[a], &[c2], &[ex(v2)], &p2));
        // Combine with weights.
        let (w1, w2) = (Fr::from_u64(3), Fr::from_u64(11));
        let (cc, cp) = combine_weighted(&[(&[c1][..], &p1), (&[c2][..], &p2)], &[w1, w2]);
        let v_comb = v1 * w1 + v2 * w2;
        assert!(verify(&crs, &[a], &cc, &[ex(v_comb)], &cp));
    }

    #[test]
    fn pairing_vector_identity_shape() {
        // Sanity: E((1,g), Q̂) has first coordinate 1.
        let mut r = rng();
        let q = G2Projective::random(&mut r).to_affine();
        assert!(pairing(&G1Affine::identity(), &q).is_identity());
    }

    #[test]
    fn serde_roundtrip() {
        let mut r = rng();
        let crs = Crs::hiding(&mut r);
        let enc = serde_json::to_string(&crs).unwrap();
        let dec: Crs = serde_json::from_str(&enc).unwrap();
        assert_eq!(dec, crs);
    }
}
