//! Property-based tests of the Groth–Sahai layer: completeness over
//! random statements, binding-CRS extraction, randomization invariance,
//! and the linear-combination law used by the §4 `Combine`.

use borndist_grothsahai::{combine_weighted, prove, randomize, verify, Commitment, Crs};
use borndist_pairing::{Fr, G1Affine, G1Projective, G2Affine, G2Projective};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The "extra pair" part of a statement: `(g^v, g^v)` with its `Q̂`.
type ExtraPair = ((G1Affine, G1Affine), G2Affine);

/// Builds a satisfied statement with `k` committed variables:
/// `Π e(X_i, Â_i) · e(g^v, Q̂) = 1`, returning witnesses, constants and
/// the extra pair.
fn statement(rng: &mut StdRng, k: usize) -> (Vec<G1Projective>, Vec<G2Affine>, ExtraPair) {
    let g = G1Projective::generator();
    let gh = G2Projective::generator();
    let xs_scalars: Vec<Fr> = (0..k).map(|_| Fr::random(rng)).collect();
    let as_scalars: Vec<Fr> = (0..k).map(|_| Fr::random(rng)).collect();
    let qs = Fr::random_nonzero(rng);
    let inner: Fr = xs_scalars
        .iter()
        .zip(as_scalars.iter())
        .fold(Fr::zero(), |acc, (x, a)| acc + *x * *a);
    let v = -inner * qs.invert().unwrap();
    let xs: Vec<G1Projective> = xs_scalars.iter().map(|x| g.mul(x)).collect();
    let constants: Vec<G2Affine> = as_scalars.iter().map(|a| gh.mul(a).to_affine()).collect();
    let extra = (
        (G1Affine::identity(), g.mul(&v).to_affine()),
        gh.mul(&qs).to_affine(),
    );
    (xs, constants, extra)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Completeness for 1..=3 variables on hiding and binding CRSs.
    #[test]
    fn completeness(seed in any::<u64>(), k in 1usize..4, binding in any::<bool>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let crs = if binding {
            Crs::binding(&mut rng).0
        } else {
            Crs::hiding(&mut rng)
        };
        let (xs, constants, extra) = statement(&mut rng, k);
        let committed: Vec<_> = xs.iter().map(|x| crs.commit(x, &mut rng)).collect();
        let commitments: Vec<Commitment> = committed.iter().map(|(c, _)| *c).collect();
        let rands: Vec<_> = committed.iter().map(|(_, r)| *r).collect();
        let proof = prove(&constants, &rands);
        prop_assert!(verify(&crs, &constants, &commitments, &[extra], &proof));
    }

    /// Extraction on binding CRSs recovers exactly the witness.
    #[test]
    fn binding_extraction(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (crs, ek) = Crs::binding(&mut rng);
        let x = G1Projective::random(&mut rng);
        let (c, _) = crs.commit(&x, &mut rng);
        prop_assert_eq!(ek.extract(&c), x);
    }

    /// Iterated randomization preserves validity.
    #[test]
    fn randomization_chain(seed in any::<u64>(), depth in 1usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let crs = Crs::hiding(&mut rng);
        let (xs, constants, extra) = statement(&mut rng, 2);
        let committed: Vec<_> = xs.iter().map(|x| crs.commit(x, &mut rng)).collect();
        let mut commitments: Vec<Commitment> = committed.iter().map(|(c, _)| *c).collect();
        let rands: Vec<_> = committed.iter().map(|(_, r)| *r).collect();
        let mut proof = prove(&constants, &rands);
        for _ in 0..depth {
            let (c2, p2) = randomize(&crs, &constants, &commitments, &proof, &mut rng);
            commitments = c2;
            proof = p2;
        }
        prop_assert!(verify(&crs, &constants, &commitments, &[extra], &proof));
    }

    /// Weighted combination of independent proofs of the same equation
    /// shape proves the weighted statement — with random weights.
    #[test]
    fn weighted_combination(seed in any::<u64>(), count in 2usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let crs = Crs::hiding(&mut rng);
        let g = G1Projective::generator();
        let gh = G2Projective::generator();
        let alpha = Fr::random(&mut rng);
        let a = gh.mul(&alpha).to_affine();
        let qs = Fr::random_nonzero(&mut rng);
        let q = gh.mul(&qs).to_affine();

        // Statement j: e(X_j, Â)·e(g^{v_j}, Q̂) = 1.
        let mut tuples: Vec<(Vec<Commitment>, borndist_grothsahai::Proof)> = Vec::new();
        let mut vs = Vec::new();
        for _ in 0..count {
            let x_s = Fr::random(&mut rng);
            let v = -(x_s * alpha) * qs.invert().unwrap();
            let (c, r) = crs.commit(&g.mul(&x_s), &mut rng);
            let p = prove(&[a], &[r]);
            tuples.push((vec![c], p));
            vs.push(v);
        }
        let weights: Vec<Fr> = (0..count).map(|_| Fr::random(&mut rng)).collect();
        let tuple_refs: Vec<(&[Commitment], &borndist_grothsahai::Proof)> =
            tuples.iter().map(|(c, p)| (c.as_slice(), p)).collect();
        let (cc, cp) = combine_weighted(&tuple_refs, &weights);
        let v_comb: Fr = vs.iter().zip(weights.iter()).fold(Fr::zero(), |acc, (v, w)| acc + *v * *w);
        let extra = ((G1Affine::identity(), g.mul(&v_comb).to_affine()), q);
        prop_assert!(verify(&crs, &[a], &cc, &[extra], &cp));
    }
}
