//! # borndist
//!
//! A from-scratch Rust reproduction of **"Born and Raised Distributively:
//! Fully Distributed Non-Interactive Adaptively-Secure Threshold
//! Signatures with Short Shares"** (Benoît Libert, Marc Joye, Moti Yung —
//! PODC 2014).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | contents |
//! |---|---|
//! | [`pairing`] | BLS12-381 fields, groups, optimal-ate pairing, hash-to-curve, SHA-256 — all built here, no external crypto |
//! | [`parallel`] | zero-dependency multi-core layer: `Parallelism` config, scoped-thread `par_map`/`par_chunks`, `BORNDIST_THREADS` override |
//! | [`shamir`] | polynomials, Lagrange (plain & in-the-exponent), Feldman / Pedersen / triple VSS |
//! | [`net`] | the paper's communication model as a transport-abstracted runtime: canonical byte frames, lockstep + threaded channel transports, fault injection, exact traffic metering |
//! | [`dkg`] | Pedersen distributed key generation (§3.1) with complaints, disqualification, proactive refresh (§3.3) and share recovery |
//! | [`lhsps`] | one-time linearly homomorphic structure-preserving signatures (§2.3, Appendices C–D) |
//! | [`grothsahai`] | SXDH Groth–Sahai NIWI proofs for linear pairing-product equations (§4, Appendix A) |
//! | [`core`] | the paper's schemes: §3 ROM, Appendix G aggregation, Appendix F DLIN, §4 standard model, §3.3 proactive epochs |
//! | [`baselines`] | plain BLS, Boldyreva threshold BLS, additive-reshare (ADN-style) scheme, RSA size constants |
//! | [`sim`] | scripted adaptive-adversary scenario matrix over the fault-injection transports, gated per scenario in CI |
//! | [`prelude`] | the service-facing surface in one import: schemes, `Wire`, transports, session drivers, `Parallelism` |
//!
//! See `examples/quickstart.rs` for a five-minute tour and DESIGN.md for
//! the architecture notes and the E1–E10 experiment index (measured
//! results will land in EXPERIMENTS.md alongside the measurement
//! harness).

/// The service-facing surface in one import.
///
/// Everything a deployment binary needs to generate keys distributively,
/// sign over a transport, and meter traffic:
///
/// ```rust
/// use borndist::prelude::*;
/// use std::collections::BTreeMap;
///
/// let scheme = ThresholdScheme::new(b"prelude-tour");
/// let (km, _) = scheme
///     .keygen_session(
///         ThresholdParams::new(1, 4).unwrap(),
///         &BTreeMap::new(),
///         7,
///         &TransportKind::Lockstep,
///     )
///     .unwrap();
/// let sig = scheme
///     .combine(
///         &km.params,
///         &[
///             scheme.share_sign(&km.shares[&1], b"hi"),
///             scheme.share_sign(&km.shares[&3], b"hi"),
///         ],
///     )
///     .unwrap();
/// assert!(scheme.verify(&km.public_key, b"hi", &sig));
/// ```
pub mod prelude {
    pub use borndist_core::netsign::{
        run_mux_sign, run_threshold_sign, MuxCoordinator, MuxMessage, MuxOutcome, MuxSignerPlayer,
    };
    pub use borndist_core::proactive::{ProactiveDeployment, ProactiveError};
    pub use borndist_core::ro::{
        DistKeygenError, KeyMaterial, KeyShare, PartialSignature, PublicKey, Signature,
        ThresholdScheme, VerificationKey,
    };
    pub use borndist_core::{AggregateScheme, DlinScheme, StandardScheme};
    pub use borndist_dkg::{dkg_session, refresh_session, standard_config, Behavior, DkgConfig};
    pub use borndist_net::{
        ChannelTransport, DeliveryPolicy, Error as NetError, LockstepTransport, Metrics,
        TcpOptions, TcpTransport, TransportKind, Wire,
    };
    pub use borndist_parallel::Parallelism;
    pub use borndist_shamir::ThresholdParams;
}

pub use borndist_baselines as baselines;
pub use borndist_core as core;
pub use borndist_dkg as dkg;
pub use borndist_grothsahai as grothsahai;
pub use borndist_lhsps as lhsps;
pub use borndist_net as net;
pub use borndist_pairing as pairing;
pub use borndist_parallel as parallel;
pub use borndist_shamir as shamir;
pub use borndist_sim as sim;
