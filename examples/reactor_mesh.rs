//! Event-driven reactor release gate (the acceptance gate for the
//! one-poll-loop-per-process transport, PR 10). Proves the reactor is
//! the *same protocol* as the in-process transports (byte-identical
//! metering), that it actually eliminates the thread-per-peer cost
//! (measured thread ceiling), and that the freed threads buy capacity
//! (a service leg sustaining 2× the previous in-flight bound). Prints
//! a JSON record (the `BENCH_reactor.json` trajectory point).
//!
//! Legs:
//!
//! * **parity** (always) — n = 8 DKG over reactor loopback sockets vs
//!   the in-process channel transport: identical outputs and
//!   byte-identical traffic.
//! * **n = 64 mesh** (always) — a full 64-player DKG over real sockets
//!   with a `/proc/self/status` thread-count watcher: the whole
//!   64-player process must stay ≤ n + [`THREAD_SLACK`] threads (one
//!   poll loop per player — the threaded transport would need ~2
//!   reader threads *per link*, i.e. thousands).
//! * **n = 512 mesh** (armed on hosts with ≥ [`GATE_THREADS`] CPUs and
//!   enough file descriptors) — the headline: 512 players, 130 816
//!   real loopback connections, one process, ≤ 512 + slack threads.
//! * **service 2×** (always; latency floor enforced on ≥
//!   [`GATE_THREADS`]-CPU hosts) — the daemon's signing mesh run once
//!   on the threaded engine at the legacy in-flight bound (8) and once
//!   on the reactor at 2× (16): the reactor leg must actually reach
//!   the doubled high-water mark, and its p99 must not regress past
//!   [`LATENCY_GUARD`]× the threaded leg's.
//!
//! Run with: `cargo run --release --example reactor_mesh`

use borndist::core::ro::ThresholdScheme;
use borndist::dkg::{dkg_players, dkg_session, standard_config};
use borndist::net::{
    ensure_fd_capacity, run_tcp_reactor_loopback_with, BoxedPlayer, DeliveryPolicy, LatencySummary,
    ReactorTransport, TcpOptions, TcpTransport, TransportKind, TransportStats,
};
use borndist::shamir::ThresholdParams;
use borndist_service::daemon::free_port_block;
use borndist_service::{
    MeshTransport, ServiceCoordinator, ServiceOutcome, ServicePlayer, Topology, SIGN_ROUND_BUDGET,
};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// CPU floor for the armed legs (same convention as every other gate).
const GATE_THREADS: usize = 4;
/// Allowed threads beyond one-per-player in a mesh process: the main
/// thread, the gauge's sampler, and one spare.
const THREAD_SLACK: usize = 3;
/// The daemon's current in-flight bound (CI smoke runs with 8).
const LEGACY_IN_FLIGHT: usize = 8;
/// The reactor service leg must sustain twice that.
const REACTOR_IN_FLIGHT: usize = 2 * LEGACY_IN_FLIGHT;
/// p99 regression guard for the service legs (enforced hosts only).
const LATENCY_GUARD: f64 = 1.5;
/// Descriptors a 512-player in-process mesh needs: 512·511/2 links ×
/// 2 endpoint fds + 512 listeners, with headroom.
const N512_FDS: u64 = 300_000;
/// DKG round budget (deal, complain, answer, finalize + slack).
const DKG_ROUNDS: usize = 8;

fn time_once_ms<F: FnOnce()>(f: F) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64() * 1e3
}

/// Current thread count of this process (`/proc/self/status`); `None`
/// off Linux, where the ceiling legs become record-only.
fn current_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

/// Samples the process thread count on a background thread and keeps
/// the high-water mark.
struct ThreadGauge {
    stop: Arc<AtomicBool>,
    max: Arc<AtomicUsize>,
    handle: std::thread::JoinHandle<()>,
}

impl ThreadGauge {
    fn start() -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let max = Arc::new(AtomicUsize::new(0));
        let handle = {
            let stop = Arc::clone(&stop);
            let max = Arc::clone(&max);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    if let Some(t) = current_threads() {
                        max.fetch_max(t, Ordering::Relaxed);
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
            })
        };
        ThreadGauge { stop, max, handle }
    }

    /// Stops sampling and returns the observed high-water mark (0 when
    /// `/proc` is unavailable).
    fn finish(self) -> usize {
        self.stop.store(true, Ordering::Relaxed);
        let _ = self.handle.join();
        self.max.load(Ordering::Relaxed)
    }
}

/// Runs an all-honest DKG of size `n` over reactor loopback sockets
/// under a thread gauge; returns (wall ms, thread high-water).
fn reactor_dkg_leg(n: usize, t: usize, seed: u64, options: TcpOptions) -> (f64, usize) {
    let params = ThresholdParams::new(t, n).unwrap();
    let cfg = standard_config(params, 2, b"borndist/reactor-mesh", false);
    let gauge = ThreadGauge::start();
    let ms = time_once_ms(|| {
        let players = dkg_players(&cfg, &BTreeMap::new(), seed);
        let (outputs, metrics) =
            run_tcp_reactor_loopback_with(players, options, DKG_ROUNDS).expect("reactor mesh run");
        assert_eq!(outputs.len(), n, "all {} players must finish", n);
        for out in outputs.values() {
            let out = out.as_ref().expect("honest player must not abort");
            assert_eq!(out.qualified.len(), n, "honest run qualifies everyone");
        }
        assert!(metrics.bytes > 0);
    });
    let threads_hw = gauge.finish();
    if threads_hw > 0 {
        assert!(
            threads_hw <= n + THREAD_SLACK,
            "thread ceiling: {} threads for {} players (ceiling {} + {})",
            threads_hw,
            n,
            n,
            THREAD_SLACK
        );
    }
    (ms, threads_hw)
}

/// One service signing-mesh leg on the chosen engine: `n` player nodes
/// plus a coordinator with a fixed request queue, bounded by
/// `max_in_flight`. Returns (wall clock, sign-latency summary, mux
/// high-water, coordinator socket stats).
fn service_leg(
    engine: MeshTransport,
    max_in_flight: usize,
    requests: usize,
) -> (Duration, LatencySummary, u64, TransportStats) {
    let n = 4usize;
    let params = ThresholdParams::new(1, n).unwrap();
    let domain = b"reactor-mesh-service".to_vec();
    let scheme = ThresholdScheme::new(&domain);
    let (km, dkg_metrics) = scheme
        .keygen_session(params, &BTreeMap::new(), 31, &TransportKind::Lockstep)
        .unwrap();

    let sign_base = free_port_block(n as u16 + 2).expect("free ports");
    let queue: Vec<(u64, Vec<u8>)> = (0..requests as u64)
        .map(|id| (id, format!("reactor service {}", id).into_bytes()))
        .collect();

    let start = Instant::now();
    let mut threads = Vec::new();
    for id in 1..=n as u32 {
        let player = ServicePlayer::new(
            scheme.clone(),
            &km,
            id,
            dkg_metrics.clone(),
            TransportStats::default(),
        );
        let listen = Topology::addr(sign_base, id);
        let peers = Topology::peers(sign_base, id, n as u32 + 1);
        threads.push(std::thread::spawn(move || {
            let boxed = Box::new(player) as BoxedPlayer<_, ServiceOutcome>;
            match engine {
                MeshTransport::Threaded => {
                    TcpTransport::connect(boxed, listen, peers, TcpOptions::default())
                        .expect("player connect")
                        .run(SIGN_ROUND_BUDGET)
                        .expect("player run");
                }
                MeshTransport::Reactor => {
                    ReactorTransport::connect(boxed, listen, peers, TcpOptions::default())
                        .expect("player connect")
                        .run(SIGN_ROUND_BUDGET)
                        .expect("player run");
                }
            }
        }));
    }
    let coordinator = Box::new(ServiceCoordinator::with_requests(
        n,
        scheme.clone(),
        max_in_flight,
        queue.clone(),
    )) as BoxedPlayer<_, ServiceOutcome>;
    let listen = Topology::addr(sign_base, n as u32 + 1);
    let peers = Topology::peers(sign_base, n as u32 + 1, n as u32);
    let (outcome, _, stats) = match engine {
        MeshTransport::Threaded => {
            TcpTransport::connect(coordinator, listen, peers, TcpOptions::default())
                .expect("frontend connect")
                .run_with_stats(SIGN_ROUND_BUDGET)
                .expect("frontend run")
        }
        MeshTransport::Reactor => {
            ReactorTransport::connect(coordinator, listen, peers, TcpOptions::default())
                .expect("frontend connect")
                .run_with_stats(SIGN_ROUND_BUDGET)
                .expect("frontend run")
        }
    };
    for t in threads {
        t.join().expect("player thread");
    }
    let elapsed = start.elapsed();

    assert_eq!(
        outcome.mux.signatures.len(),
        requests,
        "every request signed"
    );
    for (id, msg) in &queue {
        assert!(
            scheme.verify(&km.public_key, msg, &outcome.mux.signatures[id]),
            "request {} signature invalid on {:?}",
            id,
            engine
        );
    }
    assert!(
        outcome.mux.high_water <= max_in_flight,
        "backpressure violated: {} > {}",
        outcome.mux.high_water,
        max_in_flight
    );
    let latencies: Vec<Duration> = outcome.mux.latencies.values().copied().collect();
    (
        elapsed,
        LatencySummary::from_samples(&latencies),
        outcome.mux.high_water as u64,
        stats,
    )
}

fn main() {
    let host = std::thread::available_parallelism().map_or(1, usize::from);
    let enforced = host >= GATE_THREADS;

    // --- leg A: parity at n = 8 (always) ---
    let params = ThresholdParams::new(2, 8).unwrap();
    let cfg = standard_config(params, 2, b"borndist/reactor-mesh", false);
    let mut chan = None;
    let chan_ms = time_once_ms(|| {
        chan = Some(
            dkg_session(
                &cfg,
                &BTreeMap::new(),
                0x5eac_0a01,
                &TransportKind::Channel(DeliveryPolicy::reliable()),
            )
            .expect("channel session"),
        );
    });
    let (out_chan, m_chan) = chan.unwrap();
    let mut rx = None;
    let parity_ms = time_once_ms(|| {
        rx = Some(
            dkg_session(
                &cfg,
                &BTreeMap::new(),
                0x5eac_0a01,
                &TransportKind::TcpReactor(DeliveryPolicy::reliable()),
            )
            .expect("reactor session"),
        );
    });
    let (out_rx, m_rx) = rx.unwrap();
    assert!(
        m_chan.same_traffic(&m_rx),
        "parity: reactor must meter byte-identically ({:?} vs {:?})",
        m_chan,
        m_rx
    );
    for (id, out) in &out_chan {
        let (a, b) = (out.as_ref().unwrap(), out_rx[id].as_ref().unwrap());
        assert_eq!(a.qualified, b.qualified);
        assert_eq!(a.share, b.share);
        assert_eq!(a.combined_commitments, b.combined_commitments);
    }

    // --- leg B: n = 64 real-socket mesh under the thread gauge ---
    assert!(
        ensure_fd_capacity(6_000),
        "64-player mesh needs ~4k descriptors"
    );
    let (n64_ms, n64_threads) = reactor_dkg_leg(64, 2, 0x5eac_0a40, TcpOptions::default());

    // --- leg C: n = 512 (armed on capable hosts only) ---
    let fds_ok = ensure_fd_capacity(N512_FDS);
    let n512_armed = enforced && fds_ok;
    let n512_reason = if n512_armed {
        "armed".to_string()
    } else {
        format!(
            "host has {} CPUs (need {}) and fd capacity {} (need {})",
            host,
            GATE_THREADS,
            if fds_ok { "ok" } else { "insufficient" },
            N512_FDS
        )
    };
    let (mut n512_ms, mut n512_threads) = (0.0, 0usize);
    if n512_armed {
        // 512 single-threaded poll loops time-slice the dialing phase,
        // so every deadline scales with the committee.
        let options = TcpOptions {
            dial_timeout: Duration::from_secs(300),
            accept_timeout: Duration::from_secs(300),
            round_timeout: Duration::from_secs(600),
            ..TcpOptions::default()
        };
        let (ms, threads) = reactor_dkg_leg(512, 2, 0x5eac_0200, options);
        n512_ms = ms;
        n512_threads = threads;
    }

    // --- leg D: service legs, threaded @ 8 vs reactor @ 16 ---
    let requests = 48usize;
    let (legacy_elapsed, legacy_lat, legacy_hw, _) =
        service_leg(MeshTransport::Threaded, LEGACY_IN_FLIGHT, requests);
    let (rx_elapsed, rx_lat, rx_hw, rx_stats) =
        service_leg(MeshTransport::Reactor, REACTOR_IN_FLIGHT, requests);
    assert!(
        rx_hw as usize >= REACTOR_IN_FLIGHT,
        "reactor leg must sustain {} concurrent sessions (reached {})",
        REACTOR_IN_FLIGHT,
        rx_hw
    );
    assert!(rx_stats.frames_in > 0 && rx_stats.frames_out > 0);
    let p99_ratio = if legacy_lat.p99.is_zero() {
        0.0
    } else {
        rx_lat.p99.as_secs_f64() / legacy_lat.p99.as_secs_f64()
    };
    if enforced {
        assert!(
            p99_ratio <= LATENCY_GUARD,
            "acceptance: reactor p99 at 2x in-flight must stay within {}x of threaded at 1x (got {:.2}x)",
            LATENCY_GUARD,
            p99_ratio
        );
    }

    println!("== reactor mesh gate (host parallelism {}) ==", host);
    println!(
        "   parity_n8                 channel {:>8.1}ms  reactor {:>8.1}ms  traffic byte-identical",
        chan_ms, parity_ms
    );
    println!(
        "   dkg_n64_reactor           {:>8.1}ms  thread high-water {} (ceiling {})",
        n64_ms,
        n64_threads,
        64 + THREAD_SLACK
    );
    if n512_armed {
        println!(
            "   dkg_n512_reactor          {:>8.1}ms  thread high-water {} (ceiling {})",
            n512_ms,
            n512_threads,
            512 + THREAD_SLACK
        );
    } else {
        println!("   dkg_n512_reactor          skipped: {}", n512_reason);
    }
    println!(
        "   service_threaded_x8       {:>8.1}ms  hw {}  p50 {:?}  p99 {:?}",
        legacy_elapsed.as_secs_f64() * 1e3,
        legacy_hw,
        legacy_lat.p50,
        legacy_lat.p99
    );
    println!(
        "   service_reactor_x16       {:>8.1}ms  hw {}  p50 {:?}  p99 {:?}  p99 ratio {:.2}x ({})",
        rx_elapsed.as_secs_f64() * 1e3,
        rx_hw,
        rx_lat.p50,
        rx_lat.p99,
        p99_ratio,
        if enforced {
            "enforced"
        } else {
            "not enforced: < 4 CPUs"
        }
    );

    // Machine-readable record (BENCH_reactor.json).
    let mut json = String::from("{\n  \"bench\": \"reactor_mesh\",\n  \"unit\": \"ms\",\n");
    json.push_str(&format!(
        "  \"host_parallelism\": {},\n  \"gate\": {{\"thread_slack\": {}, \"inflight_ratio\": 2, \"latency_guard\": {:.1}, \"enforced\": {}, \"n512_armed\": {}, \"n512_reason\": \"{}\"}},\n",
        host, THREAD_SLACK, LATENCY_GUARD, enforced, n512_armed, n512_reason
    ));
    json.push_str("  \"rows\": [\n");
    let rows = [
        ("parity_n8_channel", 8usize, chan_ms, 0usize, false),
        ("parity_n8_reactor", 8, parity_ms, 0, false),
        ("dkg_n64_reactor", 64, n64_ms, n64_threads, false),
        ("dkg_n512_reactor", 512, n512_ms, n512_threads, !n512_armed),
        (
            "service_threaded_x8",
            LEGACY_IN_FLIGHT,
            legacy_elapsed.as_secs_f64() * 1e3,
            legacy_hw as usize,
            false,
        ),
        (
            "service_reactor_x16",
            REACTOR_IN_FLIGHT,
            rx_elapsed.as_secs_f64() * 1e3,
            rx_hw as usize,
            false,
        ),
    ];
    for (i, (name, n, ms, aux, skipped)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"n\": {}, \"time_ms\": {:.1}, \"aux\": {}, \"skipped\": {}}}{}\n",
            name,
            n,
            ms,
            aux,
            skipped,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"service\": {{\"requests\": {}, \"p99_ratio\": {:.2}, \"legacy_p99_ms\": {:.2}, \"reactor_p99_ms\": {:.2}, \"reactor_frames_in\": {}, \"reactor_frames_out\": {}}}\n}}",
        requests,
        p99_ratio,
        legacy_lat.p99.as_secs_f64() * 1e3,
        rx_lat.p99.as_secs_f64() * 1e3,
        rx_stats.frames_in,
        rx_stats.frames_out
    ));
    println!("\n{}", json);
}
