//! A threshold notary that refuses to rely on random oracles — the §4
//! standard-model scheme in action.
//!
//! Four notary servers generate their key with the width-1 Pedersen DKG
//! and co-sign documents with Groth–Sahai-proof signatures. Combined
//! signatures are *re-randomized*: nobody can tell which quorum signed,
//! even when the same two servers sign the same document twice.
//!
//! Run with: `cargo run --release --example standard_model_notary`

use borndist::core::standard::{StandardScheme, StdPartialSignature};
use borndist::shamir::ThresholdParams;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

fn main() {
    let params = ThresholdParams::new(1, 4).unwrap();
    let scheme = StandardScheme::new(b"notary-v1");
    let mut rng = StdRng::seed_from_u64(0x2074);

    println!("== Notary committee keygen (standard model, width-1 DKG) ==");
    let (km, metrics) = scheme
        .dist_keygen(params, &BTreeMap::new(), 0x2074)
        .expect("honest DKG");
    println!(
        "   {} active round(s); public key ĝ1 = {}...",
        metrics.active_rounds,
        hex_prefix(&km.public_key.g1.to_compressed())
    );

    let document = b"I, the undersigned committee, notarize deed #4217";

    println!("\n== Servers 2 and 4 co-sign (no oracles, NIWI proofs) ==");
    let partials: Vec<StdPartialSignature> = [2u32, 4]
        .iter()
        .map(|i| {
            let p = scheme.share_sign(&km.shares[i], document, &mut rng);
            let ok = scheme.share_verify(&km.verification_keys[i], document, &p);
            println!("   server {} partial (C_z, C_r, π̂) valid: {}", i, ok);
            p
        })
        .collect();

    let sig_a = scheme
        .combine(&params, document, &partials, &mut rng)
        .expect("quorum");
    let sig_b = scheme
        .combine(&params, document, &partials, &mut rng)
        .expect("quorum");

    println!("\n== Verification and unlinkability ==");
    println!(
        "   signature A verifies: {}",
        scheme.verify(&km.public_key, document, &sig_a)
    );
    println!(
        "   signature B verifies: {}",
        scheme.verify(&km.public_key, document, &sig_b)
    );
    println!(
        "   A == B (same quorum, same message): {} — combine re-randomizes",
        sig_a == sig_b
    );
    assert!(scheme.verify(&km.public_key, document, &sig_a));
    assert!(scheme.verify(&km.public_key, document, &sig_b));
    assert_ne!(sig_a, sig_b);

    // A different quorum is equally indistinguishable.
    let partials2: Vec<StdPartialSignature> = [1u32, 3]
        .iter()
        .map(|i| scheme.share_sign(&km.shares[i], document, &mut rng))
        .collect();
    let sig_c = scheme
        .combine(&params, document, &partials2, &mut rng)
        .unwrap();
    assert!(scheme.verify(&km.public_key, document, &sig_c));
    println!("   a disjoint quorum's signature also verifies: true");

    // Tampering detection.
    let tampered = b"I, the undersigned committee, notarize deed #9999";
    assert!(!scheme.verify(&km.public_key, tampered, &sig_a));
    println!("   altered document rejected: true");

    println!(
        "\n   signature size: {} bytes (4 G + 2 Ĝ elements; paper: 2048 bits on BN254)",
        4 * 48 + 2 * 96
    );
}

fn hex_prefix(bytes: &[u8]) -> String {
    bytes.iter().take(6).map(|b| format!("{:02x}", b)).collect()
}
