//! Multi-core throughput measurement (the acceptance gauge for the
//! `borndist_parallel` execution layer): runs the 64-signature batch
//! verification, the 64-share `Combine` pre-filter and a 1024-point MSM
//! under `Parallelism::Sequential` and 2/4/8-thread settings, checks
//! that every setting returns the same verdicts, and prints a JSON
//! record (the `BENCH_parallel.json` trajectory point; prose summary in
//! EXPERIMENTS.md).
//!
//! Acceptance gate: the 64-signature batch verify must be **≥ 2× faster
//! at 4 threads** than sequential. The ratio is only meaningful on a
//! host that can actually run 4 threads, so the assertion arms itself
//! when `std::thread::available_parallelism() ≥ 4` (the CI runners) and
//! degrades to a report-only run on smaller containers.
//!
//! Run with: `cargo run --release --example parallel_throughput`

use borndist::core::ro::{PartialSignature, Signature, ThresholdScheme};
use borndist::pairing::{msm, Fr, G1Affine, G1Projective};
use borndist::parallel::{with_parallelism, Parallelism};
use borndist::shamir::ThresholdParams;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

// 5 reps (vs the 3 of the sibling harnesses): the gate compares two
// medians against a hard floor on shared CI runners, so it gets extra
// samples against scheduler noise.
const REPS: usize = 5;
const THREADS: [usize; 4] = [1, 2, 4, 8];
const GATE_THREADS: usize = 4;
const GATE_MIN_SPEEDUP: f64 = 2.0;

fn setting(threads: usize) -> Parallelism {
    if threads == 1 {
        Parallelism::Sequential
    } else {
        Parallelism::Threads(threads)
    }
}

/// Median-of-`REPS` wall-clock milliseconds for `f`.
fn time_ms<F: FnMut()>(mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..REPS)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[REPS / 2]
}

struct Row {
    name: &'static str,
    k: usize,
    /// Median milliseconds per entry of [`THREADS`].
    ms: Vec<f64>,
}

impl Row {
    fn speedup_at(&self, threads: usize) -> f64 {
        let i = THREADS.iter().position(|&t| t == threads).unwrap();
        self.ms[0] / self.ms[i]
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(0x9A7A11E1);
    let host = std::thread::available_parallelism().map_or(1, usize::from);

    // --- workload 1: 64-signature batch verification (the gate) ---
    let scheme = ThresholdScheme::new(b"parallel-throughput");
    let km = scheme.dealer_keygen(ThresholdParams::new(5, 16).unwrap(), &mut rng);
    let k = 64usize;
    let msgs: Vec<Vec<u8>> = (0..k)
        .map(|i| format!("message {}", i).into_bytes())
        .collect();
    let sigs: Vec<Signature> = msgs
        .iter()
        .map(|m| {
            let partials: Vec<PartialSignature> = (1..=6u32)
                .map(|i| scheme.share_sign(&km.shares[&i], m))
                .collect();
            scheme.combine(&km.params, &partials).unwrap()
        })
        .collect();
    let items: Vec<(&[u8], &Signature)> = msgs
        .iter()
        .zip(sigs.iter())
        .map(|(m, s)| (m.as_slice(), s))
        .collect();
    // Verdict agreement across settings, incl. a forged batch.
    let mut forged = items.clone();
    forged[17].1 = items[18].1;
    for t in THREADS {
        let (ok, bad) = with_parallelism(setting(t), || {
            let mut r = StdRng::seed_from_u64(42);
            let ok = scheme.batch_verify(&km.public_key, &items, &mut r);
            let mut r = StdRng::seed_from_u64(42);
            let bad = scheme.batch_verify(&km.public_key, &forged, &mut r);
            (ok, bad)
        });
        assert!(ok, "valid batch rejected at {} threads", t);
        assert!(!bad, "forged batch accepted at {} threads", t);
    }
    let batch_row = Row {
        name: "ro_batch_verify",
        k,
        ms: THREADS
            .iter()
            .map(|&t| {
                let mut r = StdRng::seed_from_u64(7);
                time_ms(|| {
                    with_parallelism(setting(t), || {
                        assert!(scheme.batch_verify(&km.public_key, &items, &mut r))
                    })
                })
            })
            .collect(),
    };

    // --- workload 2: 64-share Combine pre-filter ---
    let km64 = scheme.dealer_keygen(ThresholdParams::new(20, 64).unwrap(), &mut rng);
    let msg = b"share batch";
    let partials: Vec<PartialSignature> = (1..=64u32)
        .map(|i| scheme.share_sign(&km64.shares[&i], msg))
        .collect();
    let shares_row = Row {
        name: "ro_batch_share_verify",
        k: 64,
        ms: THREADS
            .iter()
            .map(|&t| {
                let mut r = StdRng::seed_from_u64(9);
                time_ms(|| {
                    with_parallelism(setting(t), || {
                        assert!(scheme.batch_share_verify(
                            &km64.verification_keys,
                            msg,
                            &partials,
                            &mut r
                        ))
                    })
                })
            })
            .collect(),
    };

    // --- workload 3: raw 1024-point MSM (window accumulation) ---
    let n = 1024usize;
    let bases: Vec<G1Affine> = {
        let pts: Vec<G1Projective> = (0..n).map(|_| G1Projective::random(&mut rng)).collect();
        G1Projective::batch_to_affine(&pts)
    };
    let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
    let reference = with_parallelism(Parallelism::Sequential, || msm(&bases, &scalars));
    for t in THREADS {
        let got = with_parallelism(setting(t), || msm(&bases, &scalars));
        assert!(got == reference, "msm diverged at {} threads", t);
    }
    let msm_row = Row {
        name: "msm_g1",
        k: n,
        ms: THREADS
            .iter()
            .map(|&t| {
                time_ms(|| {
                    with_parallelism(setting(t), || {
                        std::hint::black_box(msm(&bases, &scalars));
                    })
                })
            })
            .collect(),
    };

    let rows = [batch_row, shares_row, msm_row];
    println!(
        "== parallel throughput (median of {} reps, host parallelism {}) ==",
        REPS, host
    );
    println!(
        "   {:<24} {:>6} {:>10} {:>10} {:>10} {:>10}  t4-speedup",
        "workload", "k", "1 thr", "2 thr", "4 thr", "8 thr"
    );
    for r in &rows {
        println!(
            "   {:<24} {:>6} {:>8.2}ms {:>8.2}ms {:>8.2}ms {:>8.2}ms  {:>8.2}x",
            r.name,
            r.k,
            r.ms[0],
            r.ms[1],
            r.ms[2],
            r.ms[3],
            r.speedup_at(GATE_THREADS)
        );
    }

    let gate = &rows[0];
    let gate_speedup = gate.speedup_at(GATE_THREADS);
    let enforced = host >= GATE_THREADS;
    if enforced {
        assert!(
            gate_speedup >= GATE_MIN_SPEEDUP,
            "acceptance: 64-sig batch verify at {} threads must be >= {}x sequential (got {:.2}x)",
            GATE_THREADS,
            GATE_MIN_SPEEDUP,
            gate_speedup
        );
    } else {
        println!(
            "   gate: host has {} hardware thread(s) < {} — speedup floor not enforced \
             (correctness cross-checks above still ran at every thread count)",
            host, GATE_THREADS
        );
    }

    // Machine-readable record (BENCH_parallel.json).
    let mut json = String::from("{\n  \"bench\": \"parallel_throughput\",\n  \"unit\": \"ms\",\n");
    json.push_str(&format!(
        "  \"reps\": {},\n  \"host_parallelism\": {},\n  \"threads\": [1, 2, 4, 8],\n",
        REPS, host
    ));
    json.push_str(&format!(
        "  \"gate\": {{\"workload\": \"ro_batch_verify\", \"threads\": {}, \"min_speedup\": {:.1}, \"enforced\": {}, \"speedup\": {:.2}}},\n",
        GATE_THREADS, GATE_MIN_SPEEDUP, enforced, gate_speedup
    ));
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"k\": {}, \"ms\": [{:.3}, {:.3}, {:.3}, {:.3}], \"speedup_t4\": {:.2}}}{}\n",
            r.name,
            r.k,
            r.ms[0],
            r.ms[1],
            r.ms[2],
            r.ms[3],
            r.speedup_at(GATE_THREADS),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}");
    println!("\n{}", json);
}
