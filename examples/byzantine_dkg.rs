//! Watching the DKG's immune system work: a 7-player key generation with
//! four different simultaneous Byzantine faults (E5's pessimistic path).
//!
//! Run with: `cargo run --release --example byzantine_dkg`

use borndist::dkg::{dkg_session, standard_config, Behavior, DkgAbort};
use borndist::net::TransportKind;
use borndist::shamir::ThresholdParams;
use std::collections::BTreeMap;

fn main() {
    let params = ThresholdParams::new(2, 7).unwrap();
    let cfg = standard_config(params, 2, b"byzantine-demo", false);

    let mut behaviors = BTreeMap::new();
    // Player 2 sends a corrupted share to player 6 but answers the
    // complaint honestly — it survives.
    behaviors.insert(
        2u32,
        Behavior {
            corrupt_shares_to: [6u32].into_iter().collect(),
            ..Default::default()
        },
    );
    // Player 3 lies to player 1 AND refuses to answer — disqualified.
    behaviors.insert(
        3u32,
        Behavior {
            corrupt_shares_to: [1u32].into_iter().collect(),
            refuse_answers: true,
            ..Default::default()
        },
    );
    // Player 5 crashes before dealing — disqualified.
    behaviors.insert(
        5u32,
        Behavior {
            crash_at_round: Some(0),
            ..Default::default()
        },
    );
    // Player 7 falsely accuses honest player 1 — harmless.
    behaviors.insert(
        7u32,
        Behavior {
            false_complaints: vec![1],
            ..Default::default()
        },
    );

    println!("== Running DKG: n=7, t=2, four Byzantine players ==");
    println!("   player 2: lies to one player, answers its complaint");
    println!("   player 3: lies and refuses to answer");
    println!("   player 5: crashes before dealing");
    println!("   player 7: falsely accuses an honest player\n");

    let (outputs, metrics) =
        dkg_session(&cfg, &behaviors, 0xB42, &TransportKind::Lockstep).expect("simulation runs");

    println!("== Network metrics ==");
    println!(
        "   total rounds: {}, active rounds: {}, messages: {}, bytes: {}, wall-clock: {:.1} ms",
        metrics.total_rounds,
        metrics.active_rounds,
        metrics.messages,
        metrics.bytes,
        metrics.elapsed.as_secs_f64() * 1e3
    );
    for (round, ((msgs, bytes), spent)) in metrics
        .per_round
        .iter()
        .zip(metrics.per_round_elapsed.iter())
        .enumerate()
    {
        println!(
            "   round {}: {} messages, {} bytes, {:.1} ms",
            round,
            msgs,
            bytes,
            spent.as_secs_f64() * 1e3
        );
    }

    println!("\n== Per-player outcomes ==");
    let mut qualified_sets = Vec::new();
    for (id, out) in &outputs {
        match out {
            Ok(o) => {
                println!(
                    "   player {}: OK, qualified set {:?}",
                    id,
                    o.qualified.iter().collect::<Vec<_>>()
                );
                qualified_sets.push(o.qualified.clone());
            }
            Err(DkgAbort::Crashed) => println!("   player {}: crashed (as scripted)", id),
            Err(e) => println!("   player {}: aborted: {}", id, e),
        }
    }

    // Agreement: every finishing player derived the same qualified set.
    assert!(qualified_sets.windows(2).all(|w| w[0] == w[1]));
    let q = &qualified_sets[0];
    assert!(q.contains(&2), "player 2 answered its complaint and stays");
    assert!(!q.contains(&3), "player 3 refused to answer and is out");
    assert!(!q.contains(&5), "player 5 crashed and is out");
    assert!(
        q.contains(&1) && q.contains(&7),
        "false accusation is harmless"
    );
    println!(
        "\n== Agreement reached: Q = {:?} ==",
        q.iter().collect::<Vec<_>>()
    );

    // And the resulting key still signs.
    let reference = outputs
        .values()
        .find_map(|o| o.as_ref().ok())
        .expect("some honest output");
    println!(
        "   joint public key: ({}...)",
        reference.public_key_coordinates()[0]
            .to_compressed()
            .iter()
            .take(6)
            .map(|b| format!("{:02x}", b))
            .collect::<String>()
    );
}
