//! Sustained-throughput load harness (experiment E11): the aggregation
//! gateway's amortized multi-pairing verification as a service-level
//! throughput number, measured three ways.
//!
//! * **Headline** — 64-signature buffers from 4 authorities through the
//!   warm gateway versus per-signature `verify` on identical inputs;
//!   the amortized path must sustain ≥ 3× the verified-signatures/sec
//!   (the PR's acceptance gate, enforced on every host).
//! * **Mixed open-loop workload** — a deterministic arrival schedule
//!   (`borndist_bench::load`) offering verify / batch-verify /
//!   partial-sign / combine operations at a target rate against an
//!   in-process gateway; per-class p50/p95/p99 from the scheduled offer
//!   time (so queueing debt is charged, not hidden).
//! * **Service leg** — the same traffic shape pushed through the real
//!   `borndist-service` stack: a 4-player signing mesh over
//!   [`TcpTransport`] loopback sockets plus the gateway worker thread
//!   the daemon front-end runs ([`run_gateway_worker`]), with
//!   enqueue→response latencies recorded client-side.
//!
//! Scale knobs (CI keeps them small; the million-verification run in
//! EXPERIMENTS.md raises them):
//!
//! * `BORNDIST_LOAD_OPS` — mixed-workload operation count (default 400)
//! * `BORNDIST_LOAD_RATE` — mixed-workload arrival rate /s (default 500)
//! * `BORNDIST_SERVICE_OPS` — service-leg request count (default 48)
//!
//! The absolute mixed-workload ops/sec floor is enforced only on hosts
//! with ≥ 4 CPUs (the `enforced` field in the JSON record); the
//! headline amortization ratio is enforced everywhere.
//!
//! Run with: `cargo run --release --example service_load`

use borndist::core::gateway::{AggregationGateway, GatewayConfig, Verdict, VerifyRequest};
use borndist::core::ro::{PartialSignature, Signature, ThresholdScheme};
use borndist::core::{AggPublicKey, AggregateScheme};
use borndist::net::{
    BoxedPlayer, LatencySummary, TcpOptions, TcpTransport, TransportKind, TransportStats,
};
use borndist::shamir::ThresholdParams;
use borndist_bench::load::{arrival_schedule, ClassRecorder, OpClass, ScheduledOp, WorkloadMix};
use borndist_service::daemon::free_port_block;
use borndist_service::{
    run_gateway_worker, ClientResponse, MeshTransport, ServiceCoordinator, ServiceOutcome,
    ServicePlayer, Topology, SIGN_ROUND_BUDGET,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Minimum amortization ratio for the headline gate (the PR acceptance
/// criterion), enforced on every host.
const HEADLINE_MIN_RATIO: f64 = 3.0;

/// Mixed-workload ops/sec floor, enforced only when the host has at
/// least [`ENFORCE_MIN_CPUS`] CPUs (PR 4 gate policy: absolute numbers
/// are meaningless on starved shared runners).
const MIXED_MIN_OPS_PER_SEC: f64 = 150.0;
const ENFORCE_MIN_CPUS: usize = 4;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A signing authority for gateway traffic.
struct Authority {
    pk: AggPublicKey,
    km: borndist::core::ro::KeyMaterial,
    params: ThresholdParams,
}

fn authorities(scheme: &AggregateScheme, n: usize, rng: &mut StdRng) -> Vec<Authority> {
    let params = ThresholdParams::new(1, 4).unwrap();
    (0..n)
        .map(|_| {
            let (pk, km) = scheme.dealer_keygen(params, rng);
            Authority { pk, km, params }
        })
        .collect()
}

fn sign(scheme: &AggregateScheme, auth: &Authority, msg: &[u8]) -> Signature {
    let partials: Vec<PartialSignature> = (1..=2u32)
        .map(|j| scheme.share_sign(&auth.pk, &auth.km.shares[&j], msg))
        .collect();
    scheme.combine(&auth.params, &partials).unwrap()
}

fn request(
    scheme: &AggregateScheme,
    auths: &[Authority],
    id: u64,
    epoch: u64,
) -> (VerifyRequest, Vec<u8>) {
    let auth = &auths[id as usize % auths.len()];
    let msg = format!("load message {}", id).into_bytes();
    let sig = sign(scheme, auth, &msg);
    (
        VerifyRequest {
            id,
            epoch,
            pk: auth.pk.clone(),
            msg: msg.clone(),
            sig,
        },
        msg,
    )
}

struct JsonRow {
    name: String,
    ops: usize,
    elapsed: Duration,
    summary: LatencySummary,
    extra: String,
}

impl JsonRow {
    fn ops_per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.ops as f64 / self.elapsed.as_secs_f64()
        }
    }

    fn render(&self) -> String {
        let mut row =
            borndist_bench::load::json_row(&self.name, self.ops, self.elapsed, &self.summary);
        if !self.extra.is_empty() {
            // Splice extra fields before the closing brace.
            row.truncate(row.len() - 1);
            row.push_str(", ");
            row.push_str(&self.extra);
            row.push('}');
        }
        row
    }
}

/// Phase 1: the headline amortization gate. Returns (ratio, rows).
fn headline_phase() -> (f64, Vec<JsonRow>) {
    let scheme = AggregateScheme::new(b"service-load");
    let mut rng = StdRng::seed_from_u64(0x10AD);
    let auths = authorities(&scheme, 4, &mut rng);
    let batch = 64usize;

    // Per-signature baseline on one buffer's worth of traffic.
    let baseline_inputs: Vec<(VerifyRequest, Vec<u8>)> = (0..batch as u64)
        .map(|id| request(&scheme, &auths, id, 0))
        .collect();
    let base_start = Instant::now();
    for (req, msg) in &baseline_inputs {
        assert!(
            scheme.verify(&req.pk, msg, &req.sig),
            "baseline input must verify"
        );
    }
    let base_elapsed = base_start.elapsed();
    let base_summary = LatencySummary::from_samples(&vec![base_elapsed / batch as u32; batch]);

    // Gateway path: one warmup buffer pays the key preparation and the
    // Appendix G key equations; the measured buffer is the steady state.
    let config = GatewayConfig {
        max_batch: batch,
        ..GatewayConfig::default()
    };
    let mut gw = AggregationGateway::new(scheme, config, StdRng::seed_from_u64(0x10AE));
    for id in 0..batch as u64 {
        let (req, _) = request(gw.scheme(), &auths, id, 0);
        gw.submit(req);
    }
    assert_eq!(gw.stats().accepted, batch as u64, "warmup buffer accepted");

    let measured: Vec<VerifyRequest> = (0..batch as u64)
        .map(|id| request(gw.scheme(), &auths, batch as u64 + id, 0).0)
        .collect();
    let gw_start = Instant::now();
    let mut arrivals: Vec<Instant> = Vec::with_capacity(batch);
    let mut latencies: Vec<Duration> = Vec::new();
    for req in measured {
        arrivals.push(Instant::now());
        let verdicts = gw.submit(req);
        if !verdicts.is_empty() {
            let done = Instant::now();
            assert!(verdicts.iter().all(|v| v.valid), "measured buffer accepted");
            latencies = arrivals.iter().map(|a| done.duration_since(*a)).collect();
        }
    }
    let gw_elapsed = gw_start.elapsed();
    assert_eq!(latencies.len(), batch, "size trigger answered the buffer");

    let ratio = base_elapsed.as_secs_f64() / gw_elapsed.as_secs_f64();
    let rows = vec![
        JsonRow {
            name: "verify_per_signature".into(),
            ops: batch,
            elapsed: base_elapsed,
            summary: base_summary,
            extra: String::new(),
        },
        JsonRow {
            name: "verify_gateway_64".into(),
            ops: batch,
            elapsed: gw_elapsed,
            summary: LatencySummary::from_samples(&latencies),
            extra: format!("\"amortization_ratio\": {:.2}", ratio),
        },
    ];
    (ratio, rows)
}

/// Phase 2: the mixed open-loop workload against an in-process gateway.
fn mixed_phase(ops: usize, rate: f64) -> (f64, Vec<JsonRow>) {
    let scheme = AggregateScheme::new(b"service-load-mixed");
    let mut rng = StdRng::seed_from_u64(0x10AF);
    let auths = authorities(&scheme, 4, &mut rng);

    // Signing-side fixtures (threshold 5-of-16, like the batch bench).
    let ro = ThresholdScheme::new(b"service-load-ro");
    let ro_km = ro.dealer_keygen(ThresholdParams::new(5, 16).unwrap(), &mut rng);
    let ro_msg: &[u8] = b"mixed workload message";
    let ro_partials: Vec<PartialSignature> = (1..=6u32)
        .map(|i| ro.share_sign(&ro_km.shares[&i], ro_msg))
        .collect();
    // Batch-verify fixture: 8 signatures over distinct messages.
    let bv_msgs: Vec<Vec<u8>> = (0..8)
        .map(|i| format!("bv message {}", i).into_bytes())
        .collect();
    let bv_sigs: Vec<Signature> = bv_msgs
        .iter()
        .map(|m| {
            let partials: Vec<PartialSignature> = (1..=6u32)
                .map(|i| ro.share_sign(&ro_km.shares[&i], m))
                .collect();
            ro.combine(&ro_km.params, &partials).unwrap()
        })
        .collect();
    let bv_items: Vec<(&[u8], &Signature)> = bv_msgs
        .iter()
        .zip(bv_sigs.iter())
        .map(|(m, s)| (m.as_slice(), s))
        .collect();

    // Pre-generate gateway requests so signing cost stays out of the
    // measured verify path.
    let schedule = arrival_schedule(ops, rate, WorkloadMix::standard(), 0x10B0);
    let verify_ops = schedule
        .iter()
        .filter(|op| op.class == OpClass::Verify)
        .count();
    let mut verify_queue: std::collections::VecDeque<VerifyRequest> = (0..verify_ops as u64)
        .map(|id| request(&scheme, &auths, id, 0).0)
        .collect();

    let mut gw = AggregationGateway::new(
        scheme,
        GatewayConfig::default(),
        StdRng::seed_from_u64(0x10B1),
    );
    let mut recorders: BTreeMap<OpClass, ClassRecorder> = BTreeMap::new();
    let mut pending_verify: BTreeMap<u64, Instant> = BTreeMap::new();
    let mut bv_rng = StdRng::seed_from_u64(0x10B2);

    let start = Instant::now();
    let settle = |verdicts: Vec<Verdict>,
                  pending: &mut BTreeMap<u64, Instant>,
                  rec: &mut BTreeMap<OpClass, ClassRecorder>| {
        let done = Instant::now();
        for v in verdicts {
            assert!(v.valid, "mixed workload submits only honest traffic");
            if let Some(offered) = pending.remove(&v.id) {
                rec.entry(OpClass::Verify)
                    .or_default()
                    .record(done.duration_since(offered));
            }
        }
    };
    for ScheduledOp { class, at } in &schedule {
        // Open loop: wait for the offer time (poll the gateway while
        // idle so deadline flushes happen on time), then charge the
        // operation from its *scheduled* offer, not from when the loop
        // got to it.
        loop {
            let now = start.elapsed();
            if now >= *at {
                break;
            }
            let verdicts = gw.poll();
            settle(verdicts, &mut pending_verify, &mut recorders);
            let gap = *at - now;
            std::thread::sleep(gap.min(Duration::from_millis(1)));
        }
        let offered = start + *at;
        match class {
            OpClass::Verify => {
                let req = verify_queue.pop_front().expect("pre-generated");
                pending_verify.insert(req.id, offered);
                let verdicts = gw.submit(req);
                settle(verdicts, &mut pending_verify, &mut recorders);
            }
            OpClass::BatchVerify => {
                assert!(ro.batch_verify(&ro_km.public_key, &bv_items, &mut bv_rng));
                recorders
                    .entry(OpClass::BatchVerify)
                    .or_default()
                    .record(offered.elapsed());
            }
            OpClass::PartialSign => {
                let _ = ro.share_sign(&ro_km.shares[&7], ro_msg);
                recorders
                    .entry(OpClass::PartialSign)
                    .or_default()
                    .record(offered.elapsed());
            }
            OpClass::Combine => {
                let sig = ro.combine(&ro_km.params, &ro_partials).unwrap();
                assert!(ro.verify(&ro_km.public_key, ro_msg, &sig));
                recorders
                    .entry(OpClass::Combine)
                    .or_default()
                    .record(offered.elapsed());
            }
        }
    }
    let verdicts = gw.flush_all();
    settle(verdicts, &mut pending_verify, &mut recorders);
    let elapsed = start.elapsed();
    assert!(pending_verify.is_empty(), "every verify request answered");

    let total: usize = recorders.values().map(|r| r.count()).sum();
    assert_eq!(total, ops, "every scheduled operation completed");
    let ops_per_sec = total as f64 / elapsed.as_secs_f64();
    let stats = gw.stats();
    let mut rows: Vec<JsonRow> = recorders
        .iter()
        .map(|(class, rec)| JsonRow {
            name: format!("mixed_{}", class.label()),
            ops: rec.count(),
            elapsed,
            summary: rec.summary(),
            extra: String::new(),
        })
        .collect();
    rows.push(JsonRow {
        name: "mixed_total".into(),
        ops: total,
        elapsed,
        summary: LatencySummary::default(),
        extra: format!(
            "\"gateway_flushes\": {}, \"gateway_multi_pairings\": {}",
            stats.size_flushes
                + stats.deadline_flushes
                + stats.epoch_flushes
                + stats.forced_flushes,
            stats.multi_pairings
        ),
    });
    (ops_per_sec, rows)
}

/// Phase 3: the service leg — a real signing mesh over TCP loopback
/// plus the daemon's gateway worker, driven at an arrival rate.
fn service_phase(ops: usize) -> Vec<JsonRow> {
    let n = 4usize;
    let params = ThresholdParams::new(1, n).unwrap();
    let domain = b"service-load-leg".to_vec();
    let scheme = ThresholdScheme::new(&domain);
    let (km, dkg_metrics) = scheme
        .keygen_session(params, &BTreeMap::new(), 29, &TransportKind::Lockstep)
        .unwrap();

    let sign_base = free_port_block(n as u16 + 2).expect("free ports");
    let top = Topology {
        params,
        seed: 29,
        domain: domain.clone(),
        dkg_base: 0,
        sign_base,
        max_in_flight: 8,
        transport: MeshTransport::Threaded,
    };

    // Mesh nodes on threads, exactly the daemon's layout.
    let mut threads = Vec::new();
    for id in 1..=n as u32 {
        let player = ServicePlayer::new(
            scheme.clone(),
            &km,
            id,
            dkg_metrics.clone(),
            TransportStats::default(),
        );
        let listen = Topology::addr(top.sign_base, id);
        let peers = Topology::peers(top.sign_base, id, n as u32 + 1);
        threads.push(std::thread::spawn(move || {
            let transport = TcpTransport::connect(
                Box::new(player) as BoxedPlayer<_, ServiceOutcome>,
                listen,
                peers,
                TcpOptions::default(),
            )
            .expect("player connect");
            transport.run(SIGN_ROUND_BUDGET).expect("player run");
        }));
    }
    let (intake_tx, intake_rx) = mpsc::channel::<(u64, Vec<u8>)>();
    let (completed_tx, completed_rx) = mpsc::channel();
    let coordinator = ServiceCoordinator::with_intake(
        n,
        scheme.clone(),
        top.max_in_flight,
        intake_rx,
        completed_tx,
    );
    let mesh = {
        let listen = Topology::addr(top.sign_base, n as u32 + 1);
        let peers = Topology::peers(top.sign_base, n as u32 + 1, n as u32);
        let transport = TcpTransport::connect(
            Box::new(coordinator) as BoxedPlayer<_, ServiceOutcome>,
            listen,
            peers,
            TcpOptions::default(),
        )
        .expect("frontend connect");
        std::thread::spawn(move || transport.run(SIGN_ROUND_BUDGET).expect("frontend run"))
    };

    // The daemon's gateway worker, verbatim.
    let agg_scheme = AggregateScheme::new(&domain);
    let mut rng = StdRng::seed_from_u64(0x10B3);
    let auths = authorities(&agg_scheme, 4, &mut rng);
    let (responses_tx, responses_rx) = mpsc::channel::<ClientResponse>();
    let (gw_tx, gw_rx) = mpsc::channel::<VerifyRequest>();
    let gateway = AggregationGateway::new(
        agg_scheme.clone(),
        GatewayConfig::default(),
        StdRng::seed_from_u64(0x10B4),
    );
    let gateway_worker =
        std::thread::spawn(move || run_gateway_worker(gateway, gw_rx, responses_tx));

    // Offered traffic: 2 verify : 1 sign, open loop.
    let verify_reqs: Vec<VerifyRequest> = (0..ops as u64)
        .filter(|id| id % 3 != 0)
        .map(|id| request(&agg_scheme, &auths, id, 0).0)
        .collect();
    let start = Instant::now();
    let mut offered_sign: BTreeMap<u64, Instant> = BTreeMap::new();
    let mut offered_verify: BTreeMap<u64, Instant> = BTreeMap::new();
    let mut verify_iter = verify_reqs.into_iter();
    for id in 0..ops as u64 {
        if id % 3 == 0 {
            offered_sign.insert(id, Instant::now());
            intake_tx
                .send((id, format!("service sign {}", id).into_bytes()))
                .expect("mesh alive");
        } else {
            let req = verify_iter.next().expect("generated");
            offered_verify.insert(id, Instant::now());
            gw_tx.send(req).expect("gateway alive");
        }
        // Modest pacing so the mesh's in-flight bound sees a stream,
        // not one burst.
        std::thread::sleep(Duration::from_millis(2));
    }
    drop(intake_tx);
    drop(gw_tx);

    let mut sign_rec = ClassRecorder::default();
    let mut verify_rec = ClassRecorder::default();
    for (id, sig) in completed_rx {
        let done = Instant::now();
        let msg = format!("service sign {}", id).into_bytes();
        assert!(scheme.verify(&km.public_key, &msg, &sig));
        sign_rec.record(done.duration_since(offered_sign.remove(&id).unwrap()));
    }
    for resp in responses_rx {
        if let ClientResponse::Verified { id, valid, .. } = resp {
            let done = Instant::now();
            assert!(valid, "service leg submits only honest traffic");
            verify_rec.record(done.duration_since(offered_verify.remove(&id).unwrap()));
        }
    }
    let elapsed = start.elapsed();
    assert!(offered_sign.is_empty() && offered_verify.is_empty());

    let outcome = mesh.join().expect("mesh thread");
    for t in threads {
        t.join().expect("player thread");
    }
    let _stats = gateway_worker.join().expect("gateway worker");
    // The coordinator's own enqueue→response clocks cover every session
    // — the same counters the daemon folds into its shutdown Summary.
    assert_eq!(outcome.0.mux.latencies.len(), sign_rec.count());

    vec![
        JsonRow {
            name: "service_sign_tcp".into(),
            ops: sign_rec.count(),
            elapsed,
            summary: sign_rec.summary(),
            extra: String::new(),
        },
        JsonRow {
            name: "service_verify_tcp".into(),
            ops: verify_rec.count(),
            elapsed,
            summary: verify_rec.summary(),
            extra: String::new(),
        },
    ]
}

fn main() {
    let ops = env_usize("BORNDIST_LOAD_OPS", 400);
    let rate = env_f64("BORNDIST_LOAD_RATE", 500.0);
    let service_ops = env_usize("BORNDIST_SERVICE_OPS", 48);
    let host_parallelism = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let enforced = host_parallelism >= ENFORCE_MIN_CPUS;

    let (ratio, mut rows) = headline_phase();
    let (mixed_ops_per_sec, mixed_rows) = mixed_phase(ops, rate);
    rows.extend(mixed_rows);
    rows.extend(service_phase(service_ops));

    println!("== service load harness (E11) ==");
    for r in &rows {
        println!(
            "   {:<24} ops={:<6} {:>9.1} ops/s   p50 {:>8.3} ms   p95 {:>8.3} ms   p99 {:>8.3} ms",
            r.name,
            r.ops,
            r.ops_per_sec(),
            r.summary.p50.as_secs_f64() * 1e3,
            r.summary.p95.as_secs_f64() * 1e3,
            r.summary.p99.as_secs_f64() * 1e3,
        );
    }
    println!(
        "   headline amortization {:.2}x (floor {:.1}x); mixed {:.1} ops/s (floor {:.1}, {})",
        ratio,
        HEADLINE_MIN_RATIO,
        mixed_ops_per_sec,
        MIXED_MIN_OPS_PER_SEC,
        if enforced {
            "enforced"
        } else {
            "not enforced: < 4 CPUs"
        },
    );

    // Machine-readable record (BENCH_service.json).
    let mut json = String::from("{\n  \"bench\": \"service_load\",\n");
    json.push_str(&format!(
        "  \"host_parallelism\": {},\n  \"enforced\": {},\n  \"amortization_ratio\": {:.2},\n  \"rows\": [\n",
        host_parallelism, enforced, ratio
    ));
    for (i, r) in rows.iter().enumerate() {
        json.push_str("    ");
        json.push_str(&r.render());
        json.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ]\n}");
    println!("\n{}", json);

    assert!(
        ratio >= HEADLINE_MIN_RATIO,
        "acceptance: gateway amortized verification must be >= {}x per-signature verify (got {:.2}x)",
        HEADLINE_MIN_RATIO,
        ratio
    );
    if enforced {
        assert!(
            mixed_ops_per_sec >= MIXED_MIN_OPS_PER_SEC,
            "mixed workload sustained {:.1} ops/s, floor is {:.1}",
            mixed_ops_per_sec,
            MIXED_MIN_OPS_PER_SEC
        );
    }
}
