//! Adversary scenario matrix — the CI driver for `borndist::sim`.
//!
//! Runs one named scenario (or all of them) and fails the process if any
//! success criterion fails, so each scenario can be its own named CI
//! step:
//!
//! ```text
//! cargo run --release --example adversary_matrix -- equivocation
//! cargo run --release --example adversary_matrix -- adaptive-corruption
//! cargo run --release --example adversary_matrix -- complaint-flood
//! cargo run --release --example adversary_matrix -- churn
//! cargo run --release --example adversary_matrix            # all
//! ```

use borndist::sim::{run_scenario, SCENARIOS};

const SEED: u64 = 0xad5e_25a7;

fn main() {
    let arg = std::env::args().nth(1);
    let selected: Vec<&str> = match arg.as_deref() {
        None | Some("all") => SCENARIOS.to_vec(),
        Some(name) => vec![SCENARIOS
            .iter()
            .copied()
            .find(|s| *s == name)
            .unwrap_or_else(|| {
                eprintln!("unknown scenario {:?}; known: {:?}", name, SCENARIOS);
                std::process::exit(2);
            })],
    };
    let mut failures = 0usize;
    for name in selected {
        let report = run_scenario(name, SEED).expect("scenario must run");
        print!("{}", report);
        if !report.all_pass() {
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("{} scenario(s) failed", failures);
        std::process::exit(1);
    }
    println!("adversary matrix: all criteria passed");
}
