//! Scalar-multiplication kernel measurement (the acceptance gauge for
//! the GLV/GLS + lazy-reduction pass, ROADMAP item 2): times the three
//! variable-base ladders — schoolbook double-and-add, width-4 wNAF, and
//! the endomorphism-decomposed joint ladder behind `Projective::mul` —
//! on both curve groups, cross-checks that all three agree on every
//! input, and prints a JSON record (the `BENCH_scalar_mul.json`
//! trajectory point; prose summary in EXPERIMENTS.md).
//!
//! Acceptance gates (all recorded; asserted only when the run is
//! wall-clock stable, mirroring `BENCH_parallel.json`'s `enforced`
//! flag):
//!
//! * G1 GLV-2 ladder ≥ 2.0× the schoolbook reference and ≥ 1.25× the
//!   wNAF baseline (GLV halves the doublings but shares the addition
//!   count, so ~1.4–1.6× over wNAF is the algorithmic ceiling);
//! * G2 GLS-4 ladder ≥ 2.0× schoolbook and ≥ 1.4× wNAF (quarter-length
//!   doubling chain);
//! * the end-to-end batch-verify path must not regress (report-only
//!   row: its random-weight MSM and fixed-base muls ride the same
//!   kernels).
//!
//! Run with: `cargo run --release --example scalar_mul_throughput`

use borndist::core::ro::{PartialSignature, Signature, ThresholdScheme};
use borndist::pairing::{Fr, G1Projective, G2Projective};
use borndist::shamir::ThresholdParams;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const REPS: usize = 5;
/// Scalar multiplications per timed sample.
const MULS: usize = 64;
/// Relative sample spread ((max-min)/median) below which the run counts
/// as wall-clock stable and the floors are enforced.
const STABLE_SPREAD: f64 = 0.25;

const G1_VS_SCHOOLBOOK: f64 = 2.0;
const G1_VS_WNAF: f64 = 1.25;
const G2_VS_SCHOOLBOOK: f64 = 2.0;
const G2_VS_WNAF: f64 = 1.4;

/// Median-of-`REPS` wall-clock milliseconds for `f`, plus the relative
/// spread of the samples (stability signal for the gate).
fn time_ms<F: FnMut()>(mut f: F) -> (f64, f64) {
    let mut samples: Vec<f64> = (0..REPS)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples[REPS / 2];
    let spread = (samples[REPS - 1] - samples[0]) / median;
    (median, spread)
}

struct Row {
    name: &'static str,
    schoolbook_ms: f64,
    wnaf_ms: f64,
    glv_ms: f64,
    spread: f64,
}

impl Row {
    fn vs_schoolbook(&self) -> f64 {
        self.schoolbook_ms / self.glv_ms
    }
    fn vs_wnaf(&self) -> f64 {
        self.wnaf_ms / self.glv_ms
    }
}

fn bench_group<P, FS, FW, FG>(
    name: &'static str,
    points: &[P],
    scalars: &[Fr],
    mut schoolbook: FS,
    mut wnaf: FW,
    mut glv: FG,
) -> Row
where
    FS: FnMut(&P, &Fr),
    FW: FnMut(&P, &Fr),
    FG: FnMut(&P, &Fr),
{
    let run = |f: &mut dyn FnMut(&P, &Fr)| {
        for (p, s) in points.iter().zip(scalars.iter()) {
            f(p, s);
        }
    };
    let (schoolbook_ms, s1) = time_ms(|| run(&mut |p, s| schoolbook(p, s)));
    let (wnaf_ms, s2) = time_ms(|| run(&mut |p, s| wnaf(p, s)));
    let (glv_ms, s3) = time_ms(|| run(&mut |p, s| glv(p, s)));
    Row {
        name,
        schoolbook_ms,
        wnaf_ms,
        glv_ms,
        spread: s1.max(s2).max(s3),
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(0x5CA1A4);

    let g1: Vec<G1Projective> = (0..MULS).map(|_| G1Projective::random(&mut rng)).collect();
    let g2: Vec<G2Projective> = (0..MULS).map(|_| G2Projective::random(&mut rng)).collect();
    let scalars: Vec<Fr> = (0..MULS).map(|_| Fr::random(&mut rng)).collect();

    // Correctness cross-check before timing anything: all three ladders
    // agree pointwise (the property suite proves this exhaustively; this
    // is the release-codegen spot check on the exact benched inputs).
    for (p, s) in g1.iter().zip(scalars.iter()) {
        let want = p.mul_schoolbook(&s.to_le_bits());
        assert!(p.mul(s) == want, "G1 GLV ladder diverged");
        assert!(
            p.mul_vartime_limbs(&s.to_le_bits()) == want,
            "G1 wNAF diverged"
        );
    }
    for (q, s) in g2.iter().zip(scalars.iter()) {
        let want = q.mul_schoolbook(&s.to_le_bits());
        assert!(q.mul(s) == want, "G2 GLS ladder diverged");
        assert!(
            q.mul_vartime_limbs(&s.to_le_bits()) == want,
            "G2 wNAF diverged"
        );
    }

    let g1_row = bench_group(
        "g1_scalar_mul",
        &g1,
        &scalars,
        |p, s| {
            std::hint::black_box(p.mul_schoolbook(&s.to_le_bits()));
        },
        |p, s| {
            std::hint::black_box(p.mul_vartime_limbs(&s.to_le_bits()));
        },
        |p, s| {
            std::hint::black_box(p.mul(s));
        },
    );
    let g2_row = bench_group(
        "g2_scalar_mul",
        &g2,
        &scalars,
        |p, s| {
            std::hint::black_box(p.mul_schoolbook(&s.to_le_bits()));
        },
        |p, s| {
            std::hint::black_box(p.mul_vartime_limbs(&s.to_le_bits()));
        },
        |p, s| {
            std::hint::black_box(p.mul(s));
        },
    );

    // End-to-end verify path (report-only): 32-signature batch verify,
    // whose random-weight MSM, fixed-base muls and pairing prep all sit
    // on the kernels above.
    let scheme = ThresholdScheme::new(b"scalar-mul-throughput");
    let km = scheme.dealer_keygen(ThresholdParams::new(5, 16).unwrap(), &mut rng);
    let msgs: Vec<Vec<u8>> = (0..32)
        .map(|i| format!("message {}", i).into_bytes())
        .collect();
    let sigs: Vec<Signature> = msgs
        .iter()
        .map(|m| {
            let partials: Vec<PartialSignature> = (1..=6u32)
                .map(|i| scheme.share_sign(&km.shares[&i], m))
                .collect();
            scheme.combine(&km.params, &partials).unwrap()
        })
        .collect();
    let items: Vec<(&[u8], &Signature)> = msgs
        .iter()
        .zip(sigs.iter())
        .map(|(m, s)| (m.as_slice(), s))
        .collect();
    let (verify_ms, verify_spread) = time_ms(|| {
        let mut r = StdRng::seed_from_u64(11);
        assert!(scheme.batch_verify(&km.public_key, &items, &mut r));
    });

    let rows = [g1_row, g2_row];
    println!(
        "== scalar-mul throughput ({} muls/sample, median of {} reps) ==",
        MULS, REPS
    );
    println!(
        "   {:<16} {:>12} {:>10} {:>10}  vs-schoolbook  vs-wnaf",
        "group", "schoolbook", "wnaf", "glv/gls"
    );
    for r in &rows {
        println!(
            "   {:<16} {:>10.2}ms {:>8.2}ms {:>8.2}ms  {:>11.2}x {:>8.2}x",
            r.name,
            r.schoolbook_ms,
            r.wnaf_ms,
            r.glv_ms,
            r.vs_schoolbook(),
            r.vs_wnaf()
        );
    }
    println!(
        "   verify path: 32-sig batch verify {:.2}ms (report-only)",
        verify_ms
    );

    let spread = rows.iter().map(|r| r.spread).fold(verify_spread, f64::max);
    let enforced = spread <= STABLE_SPREAD;
    let floors = [
        (
            "g1 vs schoolbook",
            rows[0].vs_schoolbook(),
            G1_VS_SCHOOLBOOK,
        ),
        ("g1 vs wnaf", rows[0].vs_wnaf(), G1_VS_WNAF),
        (
            "g2 vs schoolbook",
            rows[1].vs_schoolbook(),
            G2_VS_SCHOOLBOOK,
        ),
        ("g2 vs wnaf", rows[1].vs_wnaf(), G2_VS_WNAF),
    ];
    if enforced {
        for (what, got, floor) in floors {
            assert!(
                got >= floor,
                "acceptance: {} must be >= {}x (got {:.2}x)",
                what,
                floor,
                got
            );
        }
    } else {
        println!(
            "   gate: sample spread {:.0}% > {:.0}% — floors recorded but not \
             enforced (correctness cross-checks above still ran)",
            spread * 1e2,
            STABLE_SPREAD * 1e2
        );
    }

    // Machine-readable record (BENCH_scalar_mul.json).
    let mut json =
        String::from("{\n  \"bench\": \"scalar_mul_throughput\",\n  \"unit\": \"ms\",\n");
    json.push_str(&format!(
        "  \"reps\": {},\n  \"muls_per_sample\": {},\n  \"spread\": {:.3},\n",
        REPS, MULS, spread
    ));
    json.push_str(&format!(
        "  \"gate\": {{\"enforced\": {}, \"floors\": {{\"g1_vs_schoolbook\": {:.2}, \"g1_vs_wnaf\": {:.2}, \"g2_vs_schoolbook\": {:.2}, \"g2_vs_wnaf\": {:.2}}}}},\n",
        enforced, G1_VS_SCHOOLBOOK, G1_VS_WNAF, G2_VS_SCHOOLBOOK, G2_VS_WNAF
    ));
    json.push_str("  \"rows\": [\n");
    for r in &rows {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"schoolbook_ms\": {:.3}, \"wnaf_ms\": {:.3}, \"glv_ms\": {:.3}, \"vs_schoolbook\": {:.2}, \"vs_wnaf\": {:.2}}},\n",
            r.name,
            r.schoolbook_ms,
            r.wnaf_ms,
            r.glv_ms,
            r.vs_schoolbook(),
            r.vs_wnaf()
        ));
    }
    json.push_str(&format!(
        "    {{\"name\": \"verify_path_batch32\", \"ms\": {:.3}}}\n  ]\n}}",
        verify_ms
    ));
    println!("\n{}", json);
}
