//! CI gate: the full lifecycle — DKG then threshold signing — completing
//! over an *unreliable* network, with every message a real byte frame.
//!
//! The `ChannelTransport` runs each player on its own thread and the
//! `DeliveryPolicy` drops 10% of private frames and reorders every
//! inbox. The DKG absorbs share loss through its complaint machinery
//! (complaints and answers ride the reliable broadcast channel); the
//! signing protocol retransmits idempotent partial signatures until the
//! combiner assembles a quorum. The run asserts:
//!
//! * every player finishes both protocols with agreeing outputs;
//! * nobody is disqualified by loss alone;
//! * byte metering over the lossy channel matches the lockstep
//!   transport exactly for the DKG (frames are frames, whatever the
//!   network does to them);
//! * the signing layer demonstrably retransmitted (loss was real).
//!
//! Run with: `cargo run --example lossy_network`

use borndist::prelude::*;
use std::collections::BTreeMap;

fn main() {
    let params = ThresholdParams::new(2, 7).unwrap();
    let scheme = ThresholdScheme::new(b"lossy-network-demo");
    let behaviors = BTreeMap::new();
    let drop_rate = 0.10;

    println!(
        "== DKG + signing under {:.0}% private-frame drop + reorder ==",
        drop_rate * 100.0
    );
    println!(
        "   n = {}, t = {}, every message an encoded frame\n",
        params.n, params.t
    );

    // Reference run over the idealized lockstep transport.
    let (km_ref, m_lock) = scheme
        .keygen_session(params, &behaviors, 0x10551, &TransportKind::Lockstep)
        .expect("lockstep DKG");

    // Byte-parity leg: the same DKG over the threaded channel transport
    // with a *reliable* policy must meter exactly the same frames.
    let reliable = TransportKind::Channel(DeliveryPolicy::reliable());
    let (_, m_reliable) = scheme
        .keygen_session(params, &behaviors, 0x10551, &reliable)
        .expect("reliable channel DKG");

    // Liveness leg: the same DKG over a lossy, reordering network.
    let lossy = TransportKind::Channel(DeliveryPolicy::lossy(0xdeadbeef, drop_rate));
    let (km, m_lossy) = scheme
        .keygen_session(params, &behaviors, 0x10551, &lossy)
        .expect("lossy DKG completes");

    println!("-- DKG --");
    println!(
        "   lockstep:         {} msgs, {} bytes over {} rounds",
        m_lock.messages, m_lock.bytes, m_lock.total_rounds
    );
    println!(
        "   channel/reliable: {} msgs, {} bytes over {} rounds",
        m_reliable.messages, m_reliable.bytes, m_reliable.total_rounds
    );
    println!(
        "   channel/lossy:    {} msgs, {} bytes over {} rounds (complaint traffic = loss recovery)",
        m_lossy.messages, m_lossy.bytes, m_lossy.total_rounds
    );
    assert!(
        m_lock.same_traffic(&m_reliable),
        "gate: byte metering must be transport-independent (±0)"
    );
    assert_eq!(
        km.qualified.len(),
        params.n,
        "gate: loss alone must disqualify nobody"
    );
    assert_eq!(
        km.public_key, km_ref.public_key,
        "gate: same seed, same key, whatever the network does"
    );
    println!(
        "   ✓ ±0 byte parity on the reliable channel, all {} dealers qualified under loss\n",
        params.n
    );

    // Threshold signing over the same lossy network: all 7 players sign,
    // player 3 combines. Partials travel on lossy private links, so
    // retransmission rounds are expected.
    let msg = b"signed across a lossy network";
    let signers: Vec<u32> = (1..=7).collect();
    let (sigs, m_sign) = run_threshold_sign(
        &scheme,
        &km,
        msg,
        &signers,
        3,
        &TransportKind::Channel(DeliveryPolicy::lossy(0xfeedface, drop_rate)),
        60,
    )
    .expect("lossy signing completes");

    println!("-- signing --");
    // Loss-free baseline: n−1 partials in round 0, the same n−1 partials
    // retransmitted in round 1 (a signer cannot know the quorum already
    // assembled) plus the combined broadcast, finish in round 2 — so
    // 2(n−1)+1 messages over 3 rounds.
    println!(
        "   {} msgs, {} bytes over {} rounds (loss-free baseline: {} msgs, 3 rounds)",
        m_sign.messages,
        m_sign.bytes,
        m_sign.total_rounds,
        2 * (signers.len() - 1) + 1
    );
    assert_eq!(sigs.len(), signers.len(), "gate: every player finishes");
    let reference = &sigs[&1];
    for (id, sig) in &sigs {
        assert_eq!(
            sig, reference,
            "gate: player {} got a different signature",
            id
        );
        assert!(
            scheme.verify(&km.public_key, msg, sig),
            "gate: player {}'s signature must verify",
            id
        );
    }
    println!(
        "   ✓ all {} players hold the same verifying signature",
        sigs.len()
    );

    println!("\nOK: lossy-network lifecycle gate passed.");
}
