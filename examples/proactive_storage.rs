//! A distributed storage control plane under a *mobile* adversary —
//! the §3.3 proactive-security story (and the OceanStore-style use case
//! the paper cites).
//!
//! A 5-server quorum authorizes storage-epoch manifests with threshold
//! signatures. Between epochs the servers refresh their shares; we watch
//! a mobile adversary corrupt t servers in one epoch and t *different*
//! servers in the next, and confirm the stolen share collection —
//! although 2t > t in total — is useless. Finally a crashed server's
//! share is restored by its peers.
//!
//! Run with: `cargo run --release --example proactive_storage`

use borndist::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

fn main() {
    let params = ThresholdParams::new(2, 5).unwrap();
    let scheme = ThresholdScheme::new(b"storage-quorum");
    let (km, _) = scheme
        .keygen_session(params, &BTreeMap::new(), 0x57_0E, &TransportKind::Lockstep)
        .expect("honest DKG");
    let mut deployment = ProactiveDeployment::new(scheme, km);
    println!("== Storage quorum online: n=5, t=2, key born distributed ==");

    let mut stolen_shares = Vec::new();

    for epoch in 0..3u64 {
        let manifest = format!("epoch {} manifest: shard placement v{}", epoch, epoch);
        let msg = manifest.as_bytes();

        // Threshold-sign this epoch's manifest with three servers.
        let partials: Vec<PartialSignature> = (1..=3u32)
            .map(|i| {
                deployment
                    .scheme()
                    .share_sign(&deployment.material().shares[&i], msg)
            })
            .collect();
        let sig = deployment
            .scheme()
            .combine(&deployment.material().params, &partials)
            .unwrap();
        assert!(deployment
            .scheme()
            .verify(&deployment.material().public_key, msg, &sig));
        println!("   epoch {}: manifest signed and verified", epoch);

        // The mobile adversary corrupts two servers this epoch and
        // exfiltrates their current shares (erasure-free model: it sees
        // everything they hold).
        let victims = [(epoch as u32 * 2) % 5 + 1, (epoch as u32 * 2 + 1) % 5 + 1];
        for v in victims {
            stolen_shares.push((epoch, deployment.material().shares[&v].clone()));
        }
        println!(
            "   epoch {}: adversary corrupted servers {:?} (total stolen shares: {})",
            epoch,
            victims,
            stolen_shares.len()
        );

        // Refresh before the next epoch.
        deployment
            .refresh_epoch(&BTreeMap::new(), 0xEE00 + epoch, &TransportKind::Lockstep)
            .expect("refresh succeeds");
        println!("   epoch {}: shares refreshed; public key unchanged", epoch);
    }

    // The adversary now holds 6 shares (more than t+1 = 3!) — but from
    // three different epochs. None of the stale ones verifies against the
    // current verification keys, so they cannot be combined.
    println!("\n== Mobile adversary post-mortem ==");
    let msg = b"forged manifest";
    let mut usable = 0;
    for (epoch, share) in &stolen_shares {
        let p = deployment.scheme().share_sign(share, msg);
        let vk = &deployment.material().verification_keys[&share.index];
        if deployment.scheme().share_verify(vk, msg, &p) {
            usable += 1;
        } else {
            println!(
                "   share of server {} stolen in epoch {}: stale, rejected",
                share.index, epoch
            );
        }
    }
    println!(
        "   usable shares for the adversary: {} (needs {})",
        usable,
        params.t + 1
    );
    assert!(usable <= params.t);

    // Server 4 crashes and loses its disk; peers restore its share.
    println!("\n== Share recovery for crashed server 4 ==");
    let mut rng = StdRng::seed_from_u64(0x4EC0);
    let recovered = deployment
        .recover_share(&[1, 2, 5], 4, &mut rng)
        .expect("recovery with t+1 = 3 helpers");
    assert_eq!(recovered, deployment.material().shares[&4]);
    println!("   share restored and matches the live quorum state: true");
    println!(
        "   deployment completed {} epochs; public key stable throughout",
        deployment.epoch()
    );
}
