//! A de-centralized certification authority with compressed certificate
//! chains — the Appendix G application.
//!
//! Three independent CAs (root, intermediate, leaf issuer), each run by a
//! 4-server committee with no trusted dealer, issue a 3-link certificate
//! chain. The three threshold signatures aggregate into a *single*
//! 2-element signature that a relying party verifies in one equation.
//!
//! Run with: `cargo run --release --example distributed_ca`

use borndist::core::aggregate::{AggPublicKey, AggregateScheme};
use borndist::core::ro::PartialSignature;
use borndist::core::KeyMaterial;
use borndist::shamir::ThresholdParams;
use std::collections::BTreeMap;

struct Authority {
    name: &'static str,
    pk: AggPublicKey,
    km: KeyMaterial,
}

fn main() {
    let scheme = AggregateScheme::new(b"distributed-ca-demo");
    let params = ThresholdParams::new(1, 4).unwrap();

    println!("== Spinning up three 4-server certificate authorities ==");
    let authorities: Vec<Authority> = ["RootCA", "RegionalCA", "IssuingCA"]
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let (pk, km, metrics) = scheme
                .dist_keygen(params, &BTreeMap::new(), 0xCA00 + i as u64)
                .expect("honest DKG");
            println!(
                "   {}: key born distributed in {} active round(s); built-in validity proof ok: {}",
                name,
                metrics.active_rounds,
                scheme.key_valid(&pk)
            );
            Authority { name, pk, km }
        })
        .collect();

    // Certificate chain: root certifies regional, regional certifies
    // issuing, issuing certifies the server key.
    let chain_payloads: Vec<Vec<u8>> = vec![
        b"cert: RegionalCA public key, signed by RootCA".to_vec(),
        b"cert: IssuingCA public key, signed by RegionalCA".to_vec(),
        b"cert: server.example.org TLS key, signed by IssuingCA".to_vec(),
    ];

    println!("\n== Each committee threshold-signs its certificate ==");
    let mut chain = Vec::new();
    for (auth, payload) in authorities.iter().zip(chain_payloads.iter()) {
        // Two of the four servers participate (t+1 = 2).
        let partials: Vec<PartialSignature> = [1u32, 3]
            .iter()
            .map(|i| scheme.share_sign(&auth.pk, &auth.km.shares[i], payload))
            .collect();
        let sig = scheme.combine(&params, &partials).expect("quorum met");
        assert!(scheme.verify(&auth.pk, payload, &sig));
        println!("   {} signed ({} byte payload)", auth.name, payload.len());
        chain.push((auth.pk.clone(), payload.clone(), sig));
    }

    println!("\n== Aggregating the chain: 3 signatures -> 1 ==");
    let aggregate = scheme.aggregate(&chain).expect("all links valid");
    let statements: Vec<(AggPublicKey, Vec<u8>)> = chain
        .iter()
        .map(|(pk, m, _)| (pk.clone(), m.clone()))
        .collect();
    let individual_bytes = 96 * chain.len();
    println!(
        "   chain signature size: {} bytes (vs {} bytes unaggregated)",
        96, individual_bytes
    );

    println!("\n== Relying party verifies the whole chain at once ==");
    let ok = scheme.aggregate_verify(&statements, &aggregate);
    println!("   aggregate verifies: {}", ok);
    assert!(ok);

    // Any tampering with any link is caught.
    let mut bad = statements.clone();
    bad[2].1 = b"cert: attacker.example.org TLS key, signed by IssuingCA".to_vec();
    assert!(!scheme.aggregate_verify(&bad, &aggregate));
    println!("   tampered chain rejected: true");
}
