//! Large-committee scaling gauge (the acceptance gate for the n = 128
//! to 1024 push): measures the cross-dealer batched Pedersen check
//! against the per-dealer baseline, a full n = 128 DKG session under
//! both [`CheckStrategy`] settings, the `n = 512` session on hosts that
//! can afford it, and the `n = 1024` combine path (Lagrange cache +
//! sharded interpolation MSM). Prints a JSON record
//! (the `BENCH_dkg_scaling.json` trajectory point; prose table E12 in
//! EXPERIMENTS.md).
//!
//! Acceptance gates:
//!
//! * the 128-dealer batched verdict pass must be **≥ 1.3× faster** than
//!   the per-dealer loop — enforced on every host (the ratio is
//!   core-count independent: both sides are single MSM streams);
//! * the full n = 128 batched DKG session must be no slower than the
//!   per-dealer session — enforced only when
//!   `std::thread::available_parallelism() ≥ 4` (the CI runners), since
//!   on a loaded 1-core container the two ~minute-long runs are at the
//!   mercy of the scheduler.
//!
//! Correctness cross-checks (always on, every host): batched verdicts
//! equal per-dealer verdicts including a forged share; both strategies
//! produce identical DKG outputs and byte-identical traffic; sharded
//! combine equals the one-shot combine bit-for-bit.
//!
//! Run with: `cargo run --release --example dkg_scaling`

use borndist::core::ro::{PartialSignature, ThresholdScheme};
use borndist::dkg::{dkg_session, standard_config, CheckStrategy, DkgOutput};
use borndist::net::TransportKind;
use borndist::shamir::{pedersen_check_verdicts, PedersenCheck, PedersenSharing, ThresholdParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::time::Instant;

const REPS: usize = 5;
const GATE_THREADS: usize = 4;
/// Floor on the shamir-level batched-vs-per-dealer verdict speedup
/// (enforced on every host).
const GATE_MIN_CHECK_SPEEDUP: f64 = 1.3;
/// Floor on the session-level batched-vs-per-dealer speedup (enforced
/// only on hosts with `>= GATE_THREADS` hardware threads).
const GATE_MIN_SESSION_SPEEDUP: f64 = 1.0;

/// Median-of-`REPS` wall-clock milliseconds for `f`.
fn time_ms<F: FnMut()>(mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..REPS)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[REPS / 2]
}

/// One wall-clock millisecond sample (for the minute-scale session runs
/// where `REPS` repetitions would be prohibitive).
fn time_once_ms<F: FnOnce()>(f: F) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64() * 1e3
}

struct Row {
    name: &'static str,
    n: usize,
    baseline_ms: f64,
    batched_ms: f64,
    skipped: bool,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.baseline_ms / self.batched_ms
    }
}

/// Runs one DKG session (all honest) under the given check strategy and
/// returns the sorted outputs plus traffic metrics.
fn session(
    params: ThresholdParams,
    checks: CheckStrategy,
    seed: u64,
) -> (Vec<DkgOutput>, borndist::net::Metrics) {
    let mut cfg = standard_config(params, 2, b"borndist/dkg-scaling", false);
    cfg.checks = checks;
    let (outputs, metrics) = dkg_session(&cfg, &BTreeMap::new(), seed, &TransportKind::Lockstep)
        .expect("scaling session must complete");
    let outputs: Vec<DkgOutput> = outputs
        .into_values()
        .map(|o| o.expect("honest player must not abort"))
        .collect();
    (outputs, metrics)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(0xdc4_5ca1e);
    let host = std::thread::available_parallelism().map_or(1, usize::from);
    let mut rows: Vec<Row> = Vec::new();

    // --- leg A: 128-dealer batched Pedersen verdicts (the gate) ---
    // One receiving player's round-1 workload at n = 128, t = 16: one
    // share check per dealer, judged per-dealer vs folded into a single
    // cross-dealer MSM. The receiver sits at a representative committee
    // index (97): checks evaluate commitments at powers of the player's
    // own index, so a low index would hand the per-dealer baseline
    // unrepresentatively small scalars.
    let t = 16usize;
    let dealers = 128usize;
    let cfg_a = standard_config(
        ThresholdParams::new(t, dealers).unwrap(),
        1,
        b"borndist/dkg-scaling/leg-a",
        false,
    );
    let sharings: Vec<PedersenSharing> = (0..dealers)
        .map(|_| PedersenSharing::deal_random(&cfg_a.bases, t, &mut rng))
        .collect();
    let checks: Vec<PedersenCheck<'_>> = sharings
        .iter()
        .map(|s| PedersenCheck {
            commitment: &s.commitment,
            share: s.share_for(97),
        })
        .collect();
    // Verdict agreement, including a forged share among the 128.
    let mut forged = checks.clone();
    forged[41].share.a += borndist::pairing::Fr::one();
    let per_dealer: Vec<bool> = forged
        .iter()
        .map(|c| c.commitment.verify_share(&cfg_a.bases, &c.share))
        .collect();
    let mut check_rng = StdRng::seed_from_u64(11);
    let batched = pedersen_check_verdicts(&cfg_a.bases, &forged, &mut check_rng);
    assert_eq!(
        batched, per_dealer,
        "batched verdicts must equal the per-dealer loop"
    );
    assert!(!batched[41] && batched.iter().filter(|v| **v).count() == dealers - 1);

    let baseline_ms = time_ms(|| {
        for c in &checks {
            assert!(c.commitment.verify_share(&cfg_a.bases, &c.share));
        }
    });
    let mut check_rng = StdRng::seed_from_u64(13);
    let batched_ms = time_ms(|| {
        let verdicts = pedersen_check_verdicts(&cfg_a.bases, &checks, &mut check_rng);
        assert!(verdicts.iter().all(|v| *v));
    });
    rows.push(Row {
        name: "pedersen_checks_128_dealers",
        n: dealers,
        baseline_ms,
        batched_ms,
        skipped: false,
    });

    // --- leg B: full n = 128 DKG session, both strategies ---
    let params_128 = ThresholdParams::new(4, 128).unwrap();
    let mut out_batched: Vec<DkgOutput> = Vec::new();
    let batched_session_ms = time_once_ms(|| {
        let (o, _) = session(params_128, CheckStrategy::BatchedMsm, 0x5ca1e);
        out_batched = o;
    });
    let mut out_per_dealer: Vec<DkgOutput> = Vec::new();
    let mut metrics_pd = None;
    let per_dealer_session_ms = time_once_ms(|| {
        let (o, m) = session(params_128, CheckStrategy::PerDealer, 0x5ca1e);
        out_per_dealer = o;
        metrics_pd = Some(m);
    });
    assert_eq!(out_batched.len(), 128, "all 128 players must finish");
    assert!(
        out_batched.iter().all(|o| o.qualified.len() == 128),
        "honest run must qualify every dealer"
    );
    assert_eq!(
        out_batched, out_per_dealer,
        "check strategies must produce identical outputs at n = 128"
    );
    rows.push(Row {
        name: "dkg_session_n128",
        n: 128,
        baseline_ms: per_dealer_session_ms,
        batched_ms: batched_session_ms,
        skipped: false,
    });

    // --- leg C: n = 512 session (hosts with >= GATE_THREADS only) ---
    let run_512 = host >= GATE_THREADS;
    let mut n512_ms = 0.0;
    if run_512 {
        let params_512 = ThresholdParams::new(2, 512).unwrap();
        n512_ms = time_once_ms(|| {
            let (o, _) = session(params_512, CheckStrategy::BatchedMsm, 0x512);
            assert_eq!(o.len(), 512);
            assert!(o.iter().all(|out| out.qualified.len() == 512));
        });
    }
    rows.push(Row {
        name: "dkg_session_n512",
        n: 512,
        baseline_ms: 0.0,
        batched_ms: n512_ms,
        skipped: !run_512,
    });

    // --- leg D: n = 1024 combine — Lagrange cache + sharded MSM ---
    let scheme = ThresholdScheme::new(b"dkg-scaling/combine");
    let params_1024 = ThresholdParams::new(341, 1024).unwrap();
    let km = scheme.dealer_keygen(params_1024, &mut rng);
    let msg = b"committee of 1024";
    let partials: Vec<PartialSignature> = (1..=1024u32)
        .map(|i| scheme.share_sign(&km.shares[&i], msg))
        .collect();
    // Cold vs warm Lagrange coefficients over the full 1024-index set.
    let indices: Vec<u32> = (1..=1024u32).collect();
    scheme.lagrange_cache().clear();
    let lagrange_cold_ms = time_once_ms(|| {
        std::hint::black_box(scheme.lagrange_cache().at_zero(&indices)).unwrap();
    });
    let lagrange_warm_ms = time_ms(|| {
        std::hint::black_box(scheme.lagrange_cache().at_zero(&indices)).unwrap();
    });
    rows.push(Row {
        name: "lagrange_at_zero_n1024",
        n: 1024,
        baseline_ms: lagrange_cold_ms,
        batched_ms: lagrange_warm_ms,
        skipped: false,
    });
    // One-shot vs sharded interpolation (cache warm for both).
    let one_shot = scheme.combine(&params_1024, &partials).unwrap();
    let sharded = scheme
        .combine_sharded(&params_1024, &partials, 128)
        .unwrap();
    assert!(
        one_shot.sig.z == sharded.sig.z && one_shot.sig.r == sharded.sig.r,
        "sharded combine must be bit-identical to combine"
    );
    assert!(scheme.verify(&km.public_key, msg, &sharded));
    let combine_ms = time_ms(|| {
        std::hint::black_box(scheme.combine(&params_1024, &partials).unwrap());
    });
    let sharded_ms = time_ms(|| {
        std::hint::black_box(
            scheme
                .combine_sharded(&params_1024, &partials, 128)
                .unwrap(),
        );
    });
    rows.push(Row {
        name: "combine_n1024_shard128",
        n: 1024,
        baseline_ms: combine_ms,
        batched_ms: sharded_ms,
        skipped: false,
    });

    // --- leg E: strategy parity at n = 16 (outputs + traffic bytes) ---
    let params_16 = ThresholdParams::new(5, 16).unwrap();
    let mut parity = None;
    let batched_16_ms = time_once_ms(|| {
        parity = Some(session(params_16, CheckStrategy::BatchedMsm, 0xe5));
    });
    let (o_b, m_b) = parity.expect("batched n=16 session");
    let mut parity = None;
    let per_dealer_16_ms = time_once_ms(|| {
        parity = Some(session(params_16, CheckStrategy::PerDealer, 0xe5));
    });
    let (o_p, m_p) = parity.expect("per-dealer n=16 session");
    rows.push(Row {
        name: "dkg_session_n16",
        n: 16,
        baseline_ms: per_dealer_16_ms,
        batched_ms: batched_16_ms,
        skipped: false,
    });
    assert_eq!(o_b, o_p, "strategy parity: outputs must match at n = 16");
    assert!(
        m_b.same_traffic(&m_p),
        "strategy parity: traffic must be byte-identical"
    );
    // The n = 128 per-dealer run above reuses the same seed as the
    // batched run; its metrics must match a batched rerun's bytes too —
    // already implied by identical outputs over a deterministic
    // transport, so just sanity-check the metrics exist.
    assert!(metrics_pd.expect("per-dealer metrics").messages > 0);

    println!(
        "== dkg scaling (median of {} reps for sub-second legs, host parallelism {}) ==",
        REPS, host
    );
    println!(
        "   {:<28} {:>6} {:>12} {:>12}  speedup",
        "leg", "n", "baseline", "batched"
    );
    for r in &rows {
        if r.skipped {
            println!(
                "   {:<28} {:>6} {:>12} {:>12}  (skipped: host < {} threads)",
                r.name, r.n, "-", "-", GATE_THREADS
            );
        } else {
            println!(
                "   {:<28} {:>6} {:>10.2}ms {:>10.2}ms  {:>6.2}x",
                r.name,
                r.n,
                r.baseline_ms,
                r.batched_ms,
                r.speedup()
            );
        }
    }

    let check_speedup = rows[0].speedup();
    assert!(
        check_speedup >= GATE_MIN_CHECK_SPEEDUP,
        "acceptance: 128-dealer batched verdicts must be >= {}x the per-dealer loop (got {:.2}x)",
        GATE_MIN_CHECK_SPEEDUP,
        check_speedup
    );
    let session_speedup = rows[1].speedup();
    let enforced = host >= GATE_THREADS;
    if enforced {
        assert!(
            session_speedup >= GATE_MIN_SESSION_SPEEDUP,
            "acceptance: batched n=128 session must be >= {}x the per-dealer session (got {:.2}x)",
            GATE_MIN_SESSION_SPEEDUP,
            session_speedup
        );
    } else {
        println!(
            "   gate: host has {} hardware thread(s) < {} — session-level floor not enforced \
             (the {}x check-level floor above was still enforced)",
            host, GATE_THREADS, GATE_MIN_CHECK_SPEEDUP
        );
    }

    // Machine-readable record (BENCH_dkg_scaling.json).
    let mut json = String::from("{\n  \"bench\": \"dkg_scaling\",\n  \"unit\": \"ms\",\n");
    json.push_str(&format!(
        "  \"reps\": {},\n  \"host_parallelism\": {},\n",
        REPS, host
    ));
    json.push_str(&format!(
        "  \"gate\": {{\"leg\": \"pedersen_checks_128_dealers\", \"min_speedup\": {:.1}, \"enforced\": true, \"speedup\": {:.2}, \"session_min_speedup\": {:.1}, \"session_enforced\": {}, \"session_speedup\": {:.2}}},\n",
        GATE_MIN_CHECK_SPEEDUP, check_speedup, GATE_MIN_SESSION_SPEEDUP, enforced, session_speedup
    ));
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"n\": {}, \"baseline_ms\": {:.3}, \"batched_ms\": {:.3}, \"speedup\": {:.2}, \"skipped\": {}}}{}\n",
            r.name,
            r.n,
            r.baseline_ms,
            r.batched_ms,
            if r.skipped { 0.0 } else { r.speedup() },
            r.skipped,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}");
    println!("\n{}", json);
}
