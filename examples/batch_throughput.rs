//! Batch-verification throughput measurement (the acceptance gauge for
//! the `core::batch` subsystem): verifies 64 signatures sequentially and
//! as one randomized batch, on the §3 ROM scheme, the partial-signature
//! path, the Appendix G aggregate statements, and the §4 standard-model
//! scheme, then prints a JSON record (the BENCH_batch_verify.json
//! trajectory point; prose summary in EXPERIMENTS.md).
//!
//! Run with: `cargo run --release --example batch_throughput`

use borndist::core::ro::{PartialSignature, Signature, ThresholdScheme};
use borndist::core::standard::{StandardScheme, StdPartialSignature, StdSignature};
use borndist::core::{AggPublicKey, AggregateScheme};
use borndist::shamir::ThresholdParams;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const REPS: usize = 3;

/// Median-of-`REPS` wall-clock milliseconds for `f`.
fn time_ms<F: FnMut() -> bool>(mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..REPS)
        .map(|_| {
            let start = Instant::now();
            assert!(f(), "measured path must accept valid input");
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[REPS / 2]
}

struct Row {
    name: &'static str,
    k: usize,
    sequential_ms: f64,
    batch_ms: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.sequential_ms / self.batch_ms
    }
}

fn ro_rows(rng: &mut StdRng) -> Vec<Row> {
    let scheme = ThresholdScheme::new(b"batch-throughput");
    let params = ThresholdParams::new(5, 16).unwrap();
    let km = scheme.dealer_keygen(params, rng);
    let k = 64usize;
    let msgs: Vec<Vec<u8>> = (0..k)
        .map(|i| format!("message {}", i).into_bytes())
        .collect();
    let sigs: Vec<Signature> = msgs
        .iter()
        .map(|m| {
            let partials: Vec<PartialSignature> = (1..=6u32)
                .map(|i| scheme.share_sign(&km.shares[&i], m))
                .collect();
            scheme.combine(&km.params, &partials).unwrap()
        })
        .collect();
    let items: Vec<(&[u8], &Signature)> = msgs
        .iter()
        .zip(sigs.iter())
        .map(|(m, s)| (m.as_slice(), s))
        .collect();
    let sequential = time_ms(|| {
        items
            .iter()
            .all(|(m, s)| scheme.verify(&km.public_key, m, s))
    });
    let mut r2 = StdRng::seed_from_u64(1);
    let batch = time_ms(|| scheme.batch_verify(&km.public_key, &items, &mut r2));

    // Partial signatures: the Combine pre-filter workload.
    let km64 = scheme.dealer_keygen(ThresholdParams::new(20, 64).unwrap(), rng);
    let msg = b"share batch";
    let partials: Vec<PartialSignature> = (1..=64u32)
        .map(|i| scheme.share_sign(&km64.shares[&i], msg))
        .collect();
    let seq_shares = time_ms(|| {
        partials
            .iter()
            .all(|p| scheme.share_verify(&km64.verification_keys[&p.index], msg, p))
    });
    let mut r3 = StdRng::seed_from_u64(2);
    let batch_shares =
        time_ms(|| scheme.batch_share_verify(&km64.verification_keys, msg, &partials, &mut r3));

    vec![
        Row {
            name: "ro_signatures",
            k,
            sequential_ms: sequential,
            batch_ms: batch,
        },
        Row {
            name: "ro_shares",
            k: 64,
            sequential_ms: seq_shares,
            batch_ms: batch_shares,
        },
    ]
}

fn aggregate_row(rng: &mut StdRng) -> Row {
    let scheme = AggregateScheme::new(b"batch-throughput-agg");
    let params = ThresholdParams::new(1, 4).unwrap();
    let l = 16usize;
    let inputs: Vec<(AggPublicKey, Vec<u8>, Signature)> = (0..l)
        .map(|i| {
            let (pk, km) = scheme.dealer_keygen(params, rng);
            let msg = format!("certificate {}", i).into_bytes();
            let partials: Vec<PartialSignature> = (1..=2u32)
                .map(|j| scheme.share_sign(&pk, &km.shares[&j], &msg))
                .collect();
            (pk, msg, scheme.combine(&params, &partials).unwrap())
        })
        .collect();
    let agg = scheme.aggregate(&inputs).unwrap();
    let statements: Vec<(AggPublicKey, Vec<u8>)> = inputs
        .iter()
        .map(|(pk, m, _)| (pk.clone(), m.clone()))
        .collect();
    let sequential = time_ms(|| scheme.aggregate_verify(&statements, &agg));
    let mut r2 = StdRng::seed_from_u64(3);
    let batch = time_ms(|| scheme.aggregate_verify_batched(&statements, &agg, &mut r2));
    Row {
        name: "aggregate_statements",
        k: l,
        sequential_ms: sequential,
        batch_ms: batch,
    }
}

/// The paper's compressed certification-chain shape: a chain of `l`
/// certificates issued by only `a` distinct authorities. The batched
/// verifier collapses same-key pairing slots, so the product costs
/// `2a + 2` pairings instead of `2l + 2` — this row measures that
/// collapse against the per-statement reference on identical inputs.
fn aggregate_chain_row(rng: &mut StdRng) -> Row {
    let scheme = AggregateScheme::new(b"batch-throughput-agg-chain");
    let params = ThresholdParams::new(1, 4).unwrap();
    let (l, authorities) = (16usize, 4usize);
    let keys: Vec<_> = (0..authorities)
        .map(|_| scheme.dealer_keygen(params, rng))
        .collect();
    let inputs: Vec<(AggPublicKey, Vec<u8>, Signature)> = (0..l)
        .map(|i| {
            let (pk, km) = &keys[i % authorities];
            let msg = format!("chain link {}", i).into_bytes();
            let partials: Vec<PartialSignature> = (1..=2u32)
                .map(|j| scheme.share_sign(pk, &km.shares[&j], &msg))
                .collect();
            (pk.clone(), msg, scheme.combine(&params, &partials).unwrap())
        })
        .collect();
    let agg = scheme.aggregate(&inputs).unwrap();
    let statements: Vec<(AggPublicKey, Vec<u8>)> = inputs
        .iter()
        .map(|(pk, m, _)| (pk.clone(), m.clone()))
        .collect();
    let sequential = time_ms(|| scheme.aggregate_verify(&statements, &agg));
    let mut r2 = StdRng::seed_from_u64(5);
    let batch = time_ms(|| scheme.aggregate_verify_batched(&statements, &agg, &mut r2));
    Row {
        name: "aggregate_chain_4auth",
        k: l,
        sequential_ms: sequential,
        batch_ms: batch,
    }
}

fn standard_row(rng: &mut StdRng) -> Row {
    let scheme = StandardScheme::new(b"batch-throughput-std");
    let params = ThresholdParams::new(1, 4).unwrap();
    let km = scheme.dealer_keygen(params, rng);
    let k = 16usize;
    let msgs: Vec<Vec<u8>> = (0..k).map(|i| format!("std {}", i).into_bytes()).collect();
    let sigs: Vec<StdSignature> = msgs
        .iter()
        .map(|m| {
            let partials: Vec<StdPartialSignature> = (1..=2u32)
                .map(|i| scheme.share_sign(&km.shares[&i], m, rng))
                .collect();
            scheme.combine(&km.params, m, &partials, rng).unwrap()
        })
        .collect();
    let items: Vec<(&[u8], &StdSignature)> = msgs
        .iter()
        .zip(sigs.iter())
        .map(|(m, s)| (m.as_slice(), s))
        .collect();
    let sequential = time_ms(|| {
        items
            .iter()
            .all(|(m, s)| scheme.verify(&km.public_key, m, s))
    });
    let mut r2 = StdRng::seed_from_u64(4);
    let batch = time_ms(|| scheme.batch_verify(&km.public_key, &items, &mut r2));
    Row {
        name: "standard_signatures",
        k,
        sequential_ms: sequential,
        batch_ms: batch,
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(0xBA7C4);
    let mut rows = ro_rows(&mut rng);
    rows.push(aggregate_row(&mut rng));
    rows.push(aggregate_chain_row(&mut rng));
    rows.push(standard_row(&mut rng));

    println!(
        "== batch verification throughput (median of {} reps) ==",
        REPS
    );
    for r in &rows {
        println!(
            "   {:<22} k={:<3} sequential {:>9.2} ms   batch {:>8.2} ms   speedup {:>5.1}x",
            r.name,
            r.k,
            r.sequential_ms,
            r.batch_ms,
            r.speedup()
        );
    }
    let headline = &rows[0];
    assert!(
        headline.speedup() >= 3.0,
        "acceptance: batch of 64 must be >= 3x sequential (got {:.1}x)",
        headline.speedup()
    );

    // Machine-readable record (BENCH_batch_verify.json).
    let mut json = String::from("{\n  \"bench\": \"batch_verify\",\n  \"unit\": \"ms\",\n");
    json.push_str(&format!("  \"reps\": {},\n  \"rows\": [\n", REPS));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"k\": {}, \"sequential_ms\": {:.3}, \"batch_ms\": {:.3}, \"speedup\": {:.2}}}{}\n",
            r.name,
            r.k,
            r.sequential_ms,
            r.batch_ms,
            r.speedup(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}");
    println!("\n{}", json);
}
