//! Quickstart: a key that is *born distributed*.
//!
//! Five servers run Pedersen's DKG over the simulated network (one active
//! communication round), then any three of them sign a message without
//! talking to each other; a stateless combiner assembles the signature.
//!
//! Run with: `cargo run --release --example quickstart`

use borndist::prelude::*;
use std::collections::BTreeMap;

fn main() {
    // (t, n) = (2, 5): tolerate 2 corrupted servers out of 5.
    let params = ThresholdParams::new(2, 5).expect("valid parameters");
    let scheme = ThresholdScheme::new(b"quickstart-deployment");

    println!("== Dist-Keygen: 5 players, no trusted dealer ==");
    let (km, metrics) = scheme
        .keygen_session(params, &BTreeMap::new(), 0xC0FFEE, &TransportKind::Lockstep)
        .expect("DKG succeeds with honest players");
    println!(
        "   qualified dealers: {:?}",
        km.qualified.iter().collect::<Vec<_>>()
    );
    println!(
        "   network: {} active round(s), {} messages, {} bytes",
        metrics.active_rounds, metrics.messages, metrics.bytes
    );
    println!(
        "   public key: ({}..., {}...)",
        hex_prefix(&km.public_key.coords[0].to_compressed()),
        hex_prefix(&km.public_key.coords[1].to_compressed())
    );

    let message = b"transfer 100 coins to carol";
    println!("\n== Share-Sign: servers 1, 3, 5 sign independently ==");
    let partials: Vec<_> = [1u32, 3, 5]
        .iter()
        .map(|i| {
            let p = scheme.share_sign(&km.shares[i], message);
            let ok = scheme.share_verify(&km.verification_keys[i], message, &p);
            println!("   server {} partial signature valid: {}", i, ok);
            p
        })
        .collect();

    println!("\n== Combine: Lagrange interpolation in the exponent ==");
    let signature = scheme
        .combine(&params, &partials)
        .expect("t+1 = 3 valid partials");
    println!(
        "   signature: ({}..., {}...)  [{} bytes compressed]",
        hex_prefix(&signature.sig.z.to_compressed()),
        hex_prefix(&signature.sig.r.to_compressed()),
        96
    );

    println!("\n== Verify: product of four pairings ==");
    let valid = scheme.verify(&km.public_key, message, &signature);
    println!("   signature verifies: {}", valid);
    assert!(valid);

    // A different quorum produces the *same* signature (determinism).
    let partials2: Vec<_> = [2u32, 4, 5]
        .iter()
        .map(|i| scheme.share_sign(&km.shares[i], message))
        .collect();
    let signature2 = scheme.combine(&params, &partials2).unwrap();
    assert_eq!(signature, signature2);
    println!("   any quorum yields the identical signature: true");

    // Two shares are not enough.
    assert!(scheme.combine(&params, &partials[..2]).is_err());
    println!("   t = 2 shares alone cannot sign: true");

    // The serving-scale hot path: verify a pile of signatures with ONE
    // four-pairing product (randomized batching, core::batch) instead of
    // one product per signature.
    println!("\n== Batch-Verify: 8 signatures, one multi-pairing ==");
    let mut rng = {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(0xBA7C)
    };
    let batch_msgs: Vec<Vec<u8>> = (0..8)
        .map(|i| format!("payment #{}", i).into_bytes())
        .collect();
    let batch_sigs: Vec<_> = batch_msgs
        .iter()
        .map(|m| {
            let ps: Vec<_> = [1u32, 2, 3]
                .iter()
                .map(|i| scheme.share_sign(&km.shares[i], m))
                .collect();
            scheme.combine(&params, &ps).unwrap()
        })
        .collect();
    let items: Vec<(&[u8], &_)> = batch_msgs
        .iter()
        .zip(batch_sigs.iter())
        .map(|(m, s)| (m.as_slice(), s))
        .collect();
    let all_valid = scheme.batch_verify(&km.public_key, &items, &mut rng);
    println!("   all 8 verify in one shot: {}", all_valid);
    assert!(all_valid);
    // A single forgery sinks the whole batch (then fall back per item).
    let mut forged = items.clone();
    forged[5].1 = items[6].1;
    assert!(!scheme.batch_verify(&km.public_key, &forged, &mut rng));
    println!("   a hidden forgery is caught: true");
}

fn hex_prefix(bytes: &[u8]) -> String {
    bytes.iter().take(6).map(|b| format!("{:02x}", b)).collect()
}
