//! Pairing-engine throughput measurement (the acceptance gauge for the
//! ISSUE 3 optimal-ate rewrite): times the production ate engine against
//! the retained Tate reference on single pairings and on the scheme's
//! 4-pairing verification product, plus the prepared-argument replay
//! path, then prints a JSON record (the BENCH_pairing_engine.json
//! trajectory point; prose summary in EXPERIMENTS.md).
//!
//! Aborts unless the ate engine is ≥ 3× faster than the Tate reference
//! on a single pairing — the release-mode CI job runs this gate.
//!
//! Run with: `cargo run --release --example pairing_throughput`

use borndist::pairing::{
    multi_pairing, multi_pairing_prepared, multi_pairing_tate, pairing, pairing_tate, Fr, G1Affine,
    G1Projective, G2Affine, G2Prepared, G2Projective, Gt,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const REPS: usize = 3;
const ITERS: usize = 20;

/// Median-of-`REPS` wall-clock milliseconds for `ITERS` runs of `f`.
fn time_ms<F: FnMut() -> Gt>(mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..REPS)
        .map(|_| {
            let start = Instant::now();
            let mut acc = Gt::identity();
            for _ in 0..ITERS {
                acc = f();
            }
            assert!(!acc.is_identity(), "measured pairing must be non-trivial");
            start.elapsed().as_secs_f64() * 1e3 / ITERS as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[REPS / 2]
}

struct Row {
    name: &'static str,
    ate_ms: f64,
    reference_ms: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.reference_ms / self.ate_ms
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(0xA7E);
    let p = G1Projective::random(&mut rng).to_affine();
    let q = G2Projective::random(&mut rng).to_affine();
    let pairs: Vec<(G1Affine, G2Affine)> = (0..4)
        .map(|_| {
            (
                G1Projective::random(&mut rng).to_affine(),
                G2Projective::random(&mut rng).to_affine(),
            )
        })
        .collect();
    let refs: Vec<(&G1Affine, &G2Affine)> = pairs.iter().map(|(x, y)| (x, y)).collect();
    let preps: Vec<G2Prepared> = pairs.iter().map(|(_, y)| G2Prepared::new(y)).collect();
    let prepared: Vec<(&G1Affine, &G2Prepared)> = pairs
        .iter()
        .zip(preps.iter())
        .map(|((x, _), t)| (x, t))
        .collect();

    // Engine sanity before timing: both engines bilinear on a shared
    // statement (e(aP, Q) e(-aP, Q) = 1).
    let a = Fr::random(&mut rng);
    let ap = G1Projective::generator().mul(&a).to_affine();
    let nap = ap.neg();
    assert!(multi_pairing(&[(&ap, &q), (&nap, &q)]).is_identity());
    assert!(multi_pairing_tate(&[(&ap, &q), (&nap, &q)]).is_identity());

    let single = Row {
        name: "single_pairing",
        ate_ms: time_ms(|| pairing(&p, &q)),
        reference_ms: time_ms(|| pairing_tate(&p, &q)),
    };
    let product = Row {
        name: "product_of_4",
        ate_ms: time_ms(|| multi_pairing(&refs)),
        reference_ms: time_ms(|| multi_pairing_tate(&refs)),
    };
    let prepared_row = Row {
        name: "product_of_4_prepared",
        ate_ms: time_ms(|| multi_pairing_prepared(&prepared)),
        reference_ms: product.ate_ms, // reference: the live ate product
    };
    let rows = [single, product, prepared_row];

    println!("== pairing engine throughput (median of {} reps) ==", REPS);
    for r in &rows {
        println!(
            "   {:<24} ate {:>8.3} ms   reference {:>8.3} ms   speedup {:>5.1}x",
            r.name,
            r.ate_ms,
            r.reference_ms,
            r.speedup()
        );
    }
    assert!(
        rows[0].speedup() >= 3.0,
        "acceptance: optimal-ate pairing must be >= 3x the Tate reference (got {:.1}x)",
        rows[0].speedup()
    );

    // Machine-readable record (BENCH_pairing_engine.json).
    let mut json = String::from("{\n  \"bench\": \"pairing_engine\",\n  \"unit\": \"ms\",\n");
    json.push_str(&format!(
        "  \"reps\": {},\n  \"iters\": {},\n  \"rows\": [\n",
        REPS, ITERS
    ));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"ate_ms\": {:.3}, \"reference_ms\": {:.3}, \"speedup\": {:.2}}}{}\n",
            r.name,
            r.ate_ms,
            r.reference_ms,
            r.speedup(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}");
    println!("\n{}", json);
}
