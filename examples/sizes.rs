//! Experiment E1 + E4: the size tables.
//!
//! Prints (a) signature/key sizes for every scheme in the workspace next
//! to the paper's quoted numbers, and (b) per-server secret storage as a
//! function of `n` — O(1) for the paper's scheme vs Θ(n) for the
//! additive-reshare baseline.
//!
//! Run with: `cargo run --release --example sizes`

use borndist::baselines::{additive, boldyreva, rsa_sizes};
use borndist::core::ro::ThresholdScheme;
use borndist::core::standard::StandardScheme;
use borndist::core::DlinScheme;
use borndist::pairing::Wire;
use borndist::shamir::ThresholdParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(0x517e);
    let params = ThresholdParams::new(1, 4).unwrap();

    // Instantiate each scheme and measure real serialized objects —
    // for the §3 scheme through the canonical wire codec itself, so the
    // quoted numbers are exactly what goes on the wire.
    let ro = ThresholdScheme::new(b"sizes");
    let km = ro.dealer_keygen(params, &mut rng);
    let ro_partial = ro.share_sign(&km.shares[&1], b"m");
    let ro_sig = {
        let p: Vec<_> = (1..=2u32)
            .map(|i| ro.share_sign(&km.shares[&i], b"m"))
            .collect();
        ro.combine(&params, &p).unwrap()
    };
    let ro_sig_bytes = ro_sig.encoded_len();
    let ro_share_bytes = 4 * 32; // {(A_k(i), B_k(i))} k=1,2 — raw scalar material
    let ro_pk_bytes = km.public_key.encoded_len();

    let std_scheme = StandardScheme::new(b"sizes-std");
    let skm = std_scheme.dealer_keygen(params, &mut rng);
    let std_sig = {
        let p: Vec<_> = (1..=2u32)
            .map(|i| std_scheme.share_sign(&skm.shares[&i], b"m", &mut rng))
            .collect();
        std_scheme.combine(&params, b"m", &p, &mut rng).unwrap()
    };
    let std_sig_bytes =
        4 * std_sig.c_z.c1.to_compressed().len() + 2 * std_sig.proof.pi1.to_compressed().len();
    let std_share_bytes = 2 * 32;

    let dlin_sig_bytes = DlinScheme::signature_bytes();
    let dlin_share_bytes = DlinScheme::share_bytes();

    let bkm = boldyreva::dealer_keygen(params, &mut rng);
    let b_sig = {
        let p: Vec<_> = (1..=2u32)
            .map(|i| boldyreva::share_sign(&bkm.shares[&i], b"m"))
            .collect();
        boldyreva::combine(&params, &p).unwrap()
    };
    let b_sig_bytes = b_sig.0.to_compressed().len();

    println!("E1 — signature & key sizes (compressed bytes | bits)");
    println!("{:-<100}", "");
    println!(
        "{:<34} {:>10} {:>10} {:>10} {:>14} {:>12}",
        "scheme", "sig B", "sig bits", "share B", "PK B", "security"
    );
    println!("{:-<100}", "");
    row(
        "§3 ROM (this work, BLS12-381)",
        ro_sig_bytes,
        ro_share_bytes,
        ro_pk_bytes,
        "adaptive",
    );
    row_bits(
        "§3 ROM (paper, BN254)",
        rsa_sizes::PAPER_BN254_SIGNATURE_BITS,
        4 * 32,
        2 * 64,
        "adaptive",
    );
    row(
        "§4 std-model (BLS12-381)",
        std_sig_bytes,
        std_share_bytes,
        96,
        "adaptive",
    );
    row_bits(
        "§4 std-model (paper, BN254)",
        rsa_sizes::PAPER_BN254_STD_SIGNATURE_BITS,
        2 * 32,
        64,
        "adaptive",
    );
    row(
        "App. F DLIN (BLS12-381)",
        dlin_sig_bytes,
        dlin_share_bytes,
        6 * 96,
        "adaptive",
    );
    row("Boldyreva threshold BLS", b_sig_bytes, 32, 96, "static");
    row_bits(
        "Shoup threshold RSA",
        rsa_sizes::SHOUP_RSA_SIGNATURE_BITS,
        rsa_sizes::SHOUP_RSA_SHARE_BITS,
        rsa_sizes::RSA_MODULUS_BITS,
        "static",
    );
    println!("{:-<100}", "");
    println!(
        "\ncodec-derived §3 wire sizes (canonical encoding, vs the paper's Table 2 on BN254):"
    );
    println!(
        "   signature        {:>4} B  (paper:  64 B — two 256-bit G elements)",
        ro_sig.encoded_len()
    );
    println!(
        "   partial sig      {:>4} B  (signature + 4-byte signer index)",
        ro_partial.encoded_len()
    );
    println!(
        "   public key       {:>4} B  (paper: 128 B — two Ĝ elements)",
        km.public_key.encoded_len()
    );
    println!(
        "   verification key {:>4} B  (paper: 128 B + index)",
        km.verification_keys[&1].encoded_len()
    );
    println!(
        "   key share        {:>4} B  (4 scalars + index + vector framing; secret material {} B)",
        km.shares[&1].encoded_len(),
        ro_share_bytes
    );
    println!("   The 1.5x per-element factor is BLS12-381's 48/96-byte points vs BN254's 32/64;");
    println!("   element counts match the paper exactly (E1).");
    println!(
        "\npaper claim check: RSA/§3 signature ratio = {:.1}x (paper: 3076/512 = 6.0x on BN254)",
        rsa_sizes::SHOUP_RSA_SIGNATURE_BITS as f64 / rsa_sizes::PAPER_BN254_SIGNATURE_BITS as f64
    );
    println!(
        "                   §4/§3 signature ratio  = {:.1}x on both curves (paper: 2048/512 = 4.0x)",
        std_sig_bytes as f64 / ro_sig_bytes as f64
    );

    println!("\nE4 — per-server secret storage vs n (bytes)");
    println!("{:-<72}", "");
    println!(
        "{:<8} {:>16} {:>20} {:>22}",
        "n", "§3 scheme", "additive-reshare", "ADN RSA (computed)"
    );
    println!("{:-<72}", "");
    for n in [4usize, 8, 16, 32, 64, 128] {
        let p = ThresholdParams::new(1, n).unwrap();
        let akm = additive::keygen(p, &mut rng);
        let additive_bytes = akm.players[&1].storage_bytes();
        println!(
            "{:<8} {:>16} {:>20} {:>22}",
            n,
            ro_share_bytes,
            additive_bytes,
            rsa_sizes::adn_rsa_share_bits(n) / 8
        );
    }
    println!("{:-<72}", "");
    println!("§3 storage is constant (4 scalars); both baselines grow linearly in n.");
}

fn row(name: &str, sig: usize, share: usize, pk: usize, sec: &str) {
    println!(
        "{:<34} {:>10} {:>10} {:>10} {:>14} {:>12}",
        name,
        sig,
        sig * 8,
        share,
        pk,
        sec
    );
}

fn row_bits(name: &str, sig_bits: usize, share_bits_or_bytes: usize, pk_bytes: usize, sec: &str) {
    println!(
        "{:<34} {:>10} {:>10} {:>10} {:>14} {:>12}",
        name,
        sig_bits / 8,
        sig_bits,
        share_bits_or_bytes,
        pk_bytes,
        sec
    );
}
