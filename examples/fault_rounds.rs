//! Experiment E3: non-interactive signing vs. the additive-reshare
//! baseline under server failures.
//!
//! The paper's scheme needs exactly one message from each of any `t+1`
//! live servers — no matter who is down. The ADN-style additive scheme
//! needs *all* `n` contributions, so each missing server triggers a
//! reconstruction round.
//!
//! Run with: `cargo run --release --example fault_rounds`

use borndist::baselines::additive;
use borndist::core::ro::{PartialSignature, ThresholdScheme};
use borndist::shamir::ThresholdParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 8usize;
    let t = 3usize;
    let params = ThresholdParams::new(t, n).unwrap();
    let mut rng = StdRng::seed_from_u64(0xFA17);

    let scheme = ThresholdScheme::new(b"fault-rounds");
    let km = scheme.dealer_keygen(params, &mut rng);
    let akm = additive::keygen(params, &mut rng);
    let msg = b"payload under fire";

    println!(
        "Signing rounds and messages under f crashed servers (n = {}, t = {}):\n",
        n, t
    );
    println!(
        "{:<4} {:>18} {:>18} {:>22} {:>22}",
        "f", "§3 rounds", "§3 messages", "additive rounds", "additive messages"
    );
    println!("{:-<90}", "");

    for f in 0..=t {
        let alive: Vec<u32> = (1..=n as u32).filter(|i| *i > f as u32).collect();

        // --- paper's scheme: one round, t+1 messages, always. ---
        let quorum = &alive[..t + 1];
        let partials: Vec<PartialSignature> = quorum
            .iter()
            .map(|i| scheme.share_sign(&km.shares[i], msg))
            .collect();
        let sig = scheme.combine(&params, &partials).expect("quorum");
        assert!(scheme.verify(&km.public_key, msg, &sig));
        let ro_rounds = 1;
        let ro_msgs = t + 1;

        // --- additive baseline: all alive contribute; each missing
        //     player costs a reconstruction from t+1 backups. ---
        let mut contributions: Vec<additive::AddContribution> = alive
            .iter()
            .map(|i| additive::contribute(&akm.players[i], msg))
            .collect();
        let mut add_msgs = alive.len();
        for missing in 1..=f as u32 {
            let helpers: Vec<additive::BackupContribution> = alive[..t + 1]
                .iter()
                .map(|j| additive::backup_contribute(&akm.players[j], missing, msg).unwrap())
                .collect();
            add_msgs += helpers.len();
            let rec = additive::reconstruct_missing(&params, &helpers).expect("t+1 backups");
            assert!(additive::contribution_valid(&akm, msg, &rec));
            contributions.push(rec);
        }
        let add_sig = additive::combine(&akm, &contributions).expect("complete set");
        assert!(additive::verify(&akm.public_key, msg, &add_sig));
        let add_rounds = additive::signing_rounds(f);

        println!(
            "{:<4} {:>18} {:>18} {:>22} {:>22}",
            f, ro_rounds, ro_msgs, add_rounds, add_msgs
        );
    }

    println!("{:-<90}", "");
    println!(
        "\nThe §3 scheme is one-round and sends t+1 = {} messages regardless of faults;",
        t + 1
    );
    println!("the additive baseline doubles its rounds the moment anyone is missing.");
}
